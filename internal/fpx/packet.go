// Package fpx models the Field-programmable Port Extender substrate the
// paper plans to port onto (section 5.2): "Modules have already been
// developed for the FPX that aid in the processing of common protocols
// such as IP and TCP. By using the available infrastructure, we can
// quickly port our parsing hardware to process network packets."
//
// It provides the two wrappers that infrastructure supplies — IPv4 packet
// parsing (the layered protocol wrappers) and per-flow TCP payload
// reassembly (the TCP-Splitter role) — so a tagger or router receives the
// in-order byte stream of each TCP flow extracted from raw packets.
package fpx

import (
	"encoding/binary"
	"fmt"
)

// IPv4Header is a parsed IPv4 header (options retained raw).
type IPv4Header struct {
	Version  uint8
	IHL      uint8 // header length in 32-bit words
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst [4]byte
	Options  []byte
}

// Protocol numbers used here.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// HeaderLen returns the header size in bytes.
func (h *IPv4Header) HeaderLen() int { return int(h.IHL) * 4 }

// ParseIPv4 parses an IPv4 packet, verifying lengths and the header
// checksum, and returns the header plus its payload.
func ParseIPv4(pkt []byte) (*IPv4Header, []byte, error) {
	if len(pkt) < 20 {
		return nil, nil, fmt.Errorf("fpx: packet too short for IPv4 (%d bytes)", len(pkt))
	}
	h := &IPv4Header{
		Version:  pkt[0] >> 4,
		IHL:      pkt[0] & 0xf,
		TotalLen: binary.BigEndian.Uint16(pkt[2:]),
		ID:       binary.BigEndian.Uint16(pkt[4:]),
		TTL:      pkt[8],
		Protocol: pkt[9],
		Checksum: binary.BigEndian.Uint16(pkt[10:]),
	}
	copy(h.Src[:], pkt[12:16])
	copy(h.Dst[:], pkt[16:20])
	if h.Version != 4 {
		return nil, nil, fmt.Errorf("fpx: IP version %d, want 4", h.Version)
	}
	hl := h.HeaderLen()
	if hl < 20 || hl > len(pkt) {
		return nil, nil, fmt.Errorf("fpx: bad IHL %d for %d-byte packet", h.IHL, len(pkt))
	}
	if int(h.TotalLen) < hl || int(h.TotalLen) > len(pkt) {
		return nil, nil, fmt.Errorf("fpx: total length %d outside packet (%d bytes, header %d)", h.TotalLen, len(pkt), hl)
	}
	if Checksum16(pkt[:hl]) != 0 {
		return nil, nil, fmt.Errorf("fpx: IPv4 header checksum mismatch")
	}
	h.Options = append([]byte(nil), pkt[20:hl]...)
	return h, pkt[hl:h.TotalLen], nil
}

// TCPHeader is a parsed TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Options          []byte
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// HeaderLen returns the header size in bytes.
func (h *TCPHeader) HeaderLen() int { return int(h.DataOff) * 4 }

// ParseTCP parses a TCP segment (header + payload).
func ParseTCP(seg []byte) (*TCPHeader, []byte, error) {
	if len(seg) < 20 {
		return nil, nil, fmt.Errorf("fpx: segment too short for TCP (%d bytes)", len(seg))
	}
	h := &TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(seg[0:]),
		DstPort:  binary.BigEndian.Uint16(seg[2:]),
		Seq:      binary.BigEndian.Uint32(seg[4:]),
		Ack:      binary.BigEndian.Uint32(seg[8:]),
		DataOff:  seg[12] >> 4,
		Flags:    seg[13] & 0x3f,
		Window:   binary.BigEndian.Uint16(seg[14:]),
		Checksum: binary.BigEndian.Uint16(seg[16:]),
	}
	hl := h.HeaderLen()
	if hl < 20 || hl > len(seg) {
		return nil, nil, fmt.Errorf("fpx: bad TCP data offset %d for %d-byte segment", h.DataOff, len(seg))
	}
	h.Options = append([]byte(nil), seg[20:hl]...)
	return h, seg[hl:], nil
}

// Checksum16 computes the ones-complement 16-bit checksum used by IPv4
// and TCP. A buffer containing a correct checksum field sums to zero.
func Checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// FlowKey identifies one TCP direction (the tagger consumes one side of a
// conversation).
type FlowKey struct {
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d",
		k.Src[0], k.Src[1], k.Src[2], k.Src[3], k.SrcPort,
		k.Dst[0], k.Dst[1], k.Dst[2], k.Dst[3], k.DstPort)
}

// BuildIPv4TCP assembles a well-formed IPv4+TCP packet — the test and
// traffic-generation counterpart of the parsers. The IPv4 header checksum
// is computed; the TCP checksum field is left zero (the reassembler does
// not verify it, matching the FPX wrappers' division of labor).
func BuildIPv4TCP(key FlowKey, seq uint32, flags uint8, payload []byte) []byte {
	total := 20 + 20 + len(payload)
	pkt := make([]byte, total)
	pkt[0] = 4<<4 | 5
	binary.BigEndian.PutUint16(pkt[2:], uint16(total))
	pkt[8] = 64
	pkt[9] = ProtoTCP
	copy(pkt[12:16], key.Src[:])
	copy(pkt[16:20], key.Dst[:])
	binary.BigEndian.PutUint16(pkt[10:], 0)
	binary.BigEndian.PutUint16(pkt[10:], Checksum16(pkt[:20]))

	tcp := pkt[20:]
	binary.BigEndian.PutUint16(tcp[0:], key.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], key.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], seq)
	tcp[12] = 5 << 4
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:], 65535)
	copy(tcp[20:], payload)
	return pkt
}
