package fpx

import (
	"fmt"
	"io"
	"sort"
)

// Splitter is the TCP-Splitter role: it consumes raw IPv4 packets,
// demultiplexes TCP flows, reorders segments, and delivers each flow's
// payload bytes in order to a per-flow sink (typically a tagger or
// router). Non-TCP packets are counted and skipped; malformed packets are
// counted and skipped. Not safe for concurrent use.
type Splitter struct {
	// NewFlow supplies the sink for each new flow; returning nil ignores
	// the flow. The sink's Close is called on FIN/RST.
	NewFlow func(key FlowKey) io.WriteCloser
	// MaxBuffered bounds the out-of-order bytes held per flow (hardware
	// reassembly buffers are finite); 0 means 1 MiB. Overflow drops the
	// segment and counts it.
	MaxBuffered int

	flows map[FlowKey]*flowState
	stats SplitStats
}

// SplitStats counts splitter outcomes.
type SplitStats struct {
	Packets     int64 // total packets offered
	NonTCP      int64 // non-TCP IPv4 packets skipped
	Malformed   int64 // unparseable packets
	Flows       int64 // flows seen
	Delivered   int64 // payload bytes delivered in order
	OutOfOrder  int64 // segments buffered for later
	Duplicates  int64 // fully redundant segments dropped
	Overflowed  int64 // segments dropped by the buffer bound
	FlowsClosed int64 // FIN/RST-closed flows
}

type flowState struct {
	sink    io.WriteCloser
	nextSeq uint32
	started bool
	closed  bool
	// pending holds out-of-order segments keyed by absolute seq.
	pending  map[uint32][]byte
	buffered int
}

// NewSplitter returns an empty splitter; set NewFlow before Process.
func NewSplitter() *Splitter {
	return &Splitter{flows: make(map[FlowKey]*flowState)}
}

// Stats returns the counters so far.
func (s *Splitter) Stats() SplitStats { return s.stats }

// Process consumes one raw IPv4 packet.
func (s *Splitter) Process(pkt []byte) error {
	s.stats.Packets++
	ip, ipPayload, err := ParseIPv4(pkt)
	if err != nil {
		s.stats.Malformed++
		return err
	}
	if ip.Protocol != ProtoTCP {
		s.stats.NonTCP++
		return nil
	}
	tcp, payload, err := ParseTCP(ipPayload)
	if err != nil {
		s.stats.Malformed++
		return err
	}
	key := FlowKey{Src: ip.Src, Dst: ip.Dst, SrcPort: tcp.SrcPort, DstPort: tcp.DstPort}
	fl := s.flows[key]
	if fl == nil {
		var sink io.WriteCloser
		if s.NewFlow != nil {
			sink = s.NewFlow(key)
		}
		fl = &flowState{sink: sink, pending: make(map[uint32][]byte)}
		s.flows[key] = fl
		s.stats.Flows++
	}
	if fl.closed || fl.sink == nil {
		return nil
	}

	if tcp.Flags&FlagSYN != 0 {
		fl.nextSeq = tcp.Seq + 1 // SYN consumes one sequence number
		fl.started = true
	} else if !fl.started {
		// Mid-stream pickup: synchronize on the first segment seen.
		fl.nextSeq = tcp.Seq
		fl.started = true
	}
	if tcp.Flags&FlagRST != 0 {
		return s.closeFlow(key, fl)
	}
	if len(payload) > 0 {
		if err := s.deliver(fl, tcp.Seq, payload); err != nil {
			return err
		}
	}
	if tcp.Flags&FlagFIN != 0 && tcp.Seq+uint32(len(payload)) == fl.nextSeq {
		// FIN in order: the stream is complete.
		return s.closeFlow(key, fl)
	}
	return nil
}

// deliver writes in-order bytes and drains any now-contiguous buffered
// segments. Sequence arithmetic is modulo 2³², per TCP.
func (s *Splitter) deliver(fl *flowState, seq uint32, payload []byte) error {
	// Trim bytes already delivered (retransmission overlap).
	if diff := int32(fl.nextSeq - seq); diff > 0 {
		if int(diff) >= len(payload) {
			s.stats.Duplicates++
			return nil
		}
		payload = payload[diff:]
		seq = fl.nextSeq
	}
	if seq != fl.nextSeq {
		// Out of order: buffer for later (bounded).
		limit := s.MaxBuffered
		if limit == 0 {
			limit = 1 << 20
		}
		if _, dup := fl.pending[seq]; dup {
			s.stats.Duplicates++
			return nil
		}
		if fl.buffered+len(payload) > limit {
			s.stats.Overflowed++
			return nil
		}
		fl.pending[seq] = append([]byte(nil), payload...)
		fl.buffered += len(payload)
		s.stats.OutOfOrder++
		return nil
	}
	if err := s.write(fl, payload); err != nil {
		return err
	}
	// Drain contiguous buffered segments.
	for {
		next, ok := fl.pending[fl.nextSeq]
		if !ok {
			return nil
		}
		delete(fl.pending, fl.nextSeq)
		fl.buffered -= len(next)
		if err := s.write(fl, next); err != nil {
			return err
		}
	}
}

func (s *Splitter) write(fl *flowState, b []byte) error {
	if _, err := fl.sink.Write(b); err != nil {
		return fmt.Errorf("fpx: flow sink: %w", err)
	}
	fl.nextSeq += uint32(len(b))
	s.stats.Delivered += int64(len(b))
	return nil
}

func (s *Splitter) closeFlow(key FlowKey, fl *flowState) error {
	fl.closed = true
	s.stats.FlowsClosed++
	if fl.sink != nil {
		if err := fl.sink.Close(); err != nil {
			return fmt.Errorf("fpx: closing flow %s: %w", key, err)
		}
	}
	return nil
}

// CloseAll closes every open flow sink (end of capture).
func (s *Splitter) CloseAll() error {
	keys := make([]FlowKey, 0, len(s.flows))
	for k := range s.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var first error
	for _, k := range keys {
		fl := s.flows[k]
		if fl.closed || fl.sink == nil {
			continue
		}
		if err := s.closeFlow(k, fl); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Segmentize builds the packet train of one TCP flow carrying the stream:
// SYN, data segments of at most mss bytes, FIN — the traffic-generation
// counterpart of the splitter, used by tests and benchmarks.
func Segmentize(key FlowKey, isn uint32, stream []byte, mss int) [][]byte {
	if mss <= 0 {
		mss = 536
	}
	var pkts [][]byte
	pkts = append(pkts, BuildIPv4TCP(key, isn, FlagSYN, nil))
	seq := isn + 1
	for off := 0; off < len(stream); off += mss {
		end := off + mss
		if end > len(stream) {
			end = len(stream)
		}
		pkts = append(pkts, BuildIPv4TCP(key, seq, FlagACK|FlagPSH, stream[off:end]))
		seq += uint32(end - off)
	}
	pkts = append(pkts, BuildIPv4TCP(key, seq, FlagACK|FlagFIN, nil))
	return pkts
}
