package fpx

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Classic libpcap capture files (the format tcpdump -w writes) with
// linktype RAW (101): each record is a bare IPv4 packet, exactly what the
// splitter consumes. Reader and writer round-trip, so captures can be
// generated, replayed and inspected with standard tools.

const (
	pcapMagicLE = 0xa1b2c3d4
	pcapMagicBE = 0xd4c3b2a1
	pcapSnapLen = 65535
	// LinkTypeRawIP is DLT_RAW: packets start at the IP header.
	LinkTypeRawIP = 101
)

// WritePcap writes packets as a linktype-RAW capture. Timestamps are
// synthetic: packet i is stamped i microseconds after epoch (capture
// replay only needs ordering).
func WritePcap(w io.Writer, packets [][]byte) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2)
	binary.LittleEndian.PutUint16(hdr[6:], 4)
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRawIP)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for i, pkt := range packets {
		if len(pkt) > pcapSnapLen {
			return fmt.Errorf("fpx: packet %d exceeds snaplen (%d bytes)", i, len(pkt))
		}
		binary.LittleEndian.PutUint32(rec[0:], uint32(i/1_000_000))
		binary.LittleEndian.PutUint32(rec[4:], uint32(i%1_000_000))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(pkt)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(pkt)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(pkt); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap parses a classic capture file, returning its packets. Both byte
// orders are accepted; the linktype must be RAW IP.
func ReadPcap(r io.Reader) ([][]byte, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("fpx: pcap header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case pcapMagicLE:
		order = binary.LittleEndian
	case pcapMagicBE:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("fpx: not a pcap file (magic %08x)", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := order.Uint32(hdr[20:]); lt != LinkTypeRawIP {
		return nil, fmt.Errorf("fpx: linktype %d unsupported (need RAW IP, %d)", lt, LinkTypeRawIP)
	}
	var packets [][]byte
	var rec [16]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return packets, nil
			}
			return nil, fmt.Errorf("fpx: pcap record %d: %w", len(packets), err)
		}
		incl := order.Uint32(rec[8:])
		if incl > pcapSnapLen {
			return nil, fmt.Errorf("fpx: pcap record %d: implausible length %d", len(packets), incl)
		}
		pkt := make([]byte, incl)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return nil, fmt.Errorf("fpx: pcap record %d body: %w", len(packets), err)
		}
		packets = append(packets, pkt)
	}
}
