// Package grammar defines the context-free-grammar model consumed by the
// hardware generator, together with a parser for the Lex/Yacc-style grammar
// file format used in the paper (figure 14) and a converter from the XML DTD
// subset of figure 13.
//
// A grammar file has two sections separated by a line containing only "%%":
//
//	STRING   [a-zA-Z0-9]+
//	INT      [+-]?[0-9]+
//	%delim   [ \t\r\n]
//	%%
//	methodCall : "<methodCall>" methodName params "</methodCall>" ;
//	value      : i4 | int | string ;
//	param      : | "<param>" value "</param>" param ;
//
// The first section defines named terminal classes as regular expressions
// (see package internal/regex for the accepted subset) and optional
// directives (%delim, %start). The second section holds the productions.
// Quoted strings and single-quoted character literals inside productions
// define anonymous literal terminals. An empty alternative denotes epsilon.
// Line comments start with "//" or "#". A trailing "%%" line, if present,
// ends the production section; anything after it is ignored (Yacc trailer).
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// SymbolKind distinguishes terminals from non-terminals in production
// right-hand sides.
type SymbolKind uint8

const (
	// Terminal symbols reference an entry in Grammar.Tokens.
	Terminal SymbolKind = iota
	// NonTerminal symbols reference the left-hand side of one or more rules.
	NonTerminal
)

func (k SymbolKind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case NonTerminal:
		return "nonterminal"
	default:
		return fmt.Sprintf("SymbolKind(%d)", uint8(k))
	}
}

// Symbol is one element of a production right-hand side.
type Symbol struct {
	Kind SymbolKind
	// Name is the canonical symbol name. For named terminals and
	// non-terminals it is the identifier; for literal terminals it is the
	// literal text itself (e.g. `<methodCall>`).
	Name string
}

// IsTerminal reports whether the symbol is a terminal.
func (s Symbol) IsTerminal() bool { return s.Kind == Terminal }

func (s Symbol) String() string {
	if s.Kind == Terminal {
		return fmt.Sprintf("%q", s.Name)
	}
	return s.Name
}

// TokenDef describes one terminal of the grammar: either a named regular
// expression class from the definitions section or an anonymous literal that
// appeared quoted inside a production.
type TokenDef struct {
	// Name is the canonical terminal name. For literal tokens it equals the
	// literal text.
	Name string
	// Pattern is the regular-expression source recognizing the terminal.
	// For literal tokens it is the literal text with regex metacharacters
	// escaped.
	Pattern string
	// Literal records whether the terminal was written as a quoted string.
	Literal bool
}

// Rule is a single production alternative: LHS -> RHS. Alternatives written
// with "|" in the source are flattened into separate rules that share an
// LHS, preserving source order. An empty RHS denotes an epsilon production.
type Rule struct {
	LHS string
	RHS []Symbol
}

// String renders the rule in "lhs -> sym sym ..." form, with ε for an empty
// right-hand side.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.LHS)
	b.WriteString(" ->")
	if len(r.RHS) == 0 {
		b.WriteString(" ε")
		return b.String()
	}
	for _, s := range r.RHS {
		b.WriteByte(' ')
		b.WriteString(s.String())
	}
	return b.String()
}

// Grammar is a validated context-free grammar: the token list, the flattened
// production list, the start symbol and the delimiter class.
type Grammar struct {
	// Name is an optional human-readable label (file name or builtin id).
	Name string
	// Tokens lists every terminal in definition order: named classes first
	// (in file order), then literals in order of first appearance.
	Tokens []TokenDef
	// Rules is the flattened production list in source order.
	Rules []Rule
	// Start is the start symbol; defaults to the LHS of the first
	// production unless overridden with %start.
	Start string
	// DelimPattern is the delimiter character class as a regex source.
	// Defaults to "[ \t\r\n]". Delimiters separate tokens in the input
	// stream and are consumed by no tokenizer.
	DelimPattern string

	tokenIndex map[string]int
	ruleIndex  map[string][]int
}

// DefaultDelimPattern is the delimiter class used when a grammar file does
// not override it with %delim.
const DefaultDelimPattern = `[ \t\r\n]`

// finish builds the lookup indexes and validates the grammar. It is called
// by the parser and by New.
func (g *Grammar) finish() error {
	if g.DelimPattern == "" {
		g.DelimPattern = DefaultDelimPattern
	}
	g.tokenIndex = make(map[string]int, len(g.Tokens))
	for i, t := range g.Tokens {
		if t.Name == "" {
			return fmt.Errorf("grammar %s: token %d has empty name", g.Name, i)
		}
		if t.Pattern == "" {
			return fmt.Errorf("grammar %s: token %q has empty pattern", g.Name, t.Name)
		}
		if _, dup := g.tokenIndex[t.Name]; dup {
			return fmt.Errorf("grammar %s: duplicate token %q", g.Name, t.Name)
		}
		g.tokenIndex[t.Name] = i
	}
	g.ruleIndex = make(map[string][]int)
	for i, r := range g.Rules {
		if r.LHS == "" {
			return fmt.Errorf("grammar %s: rule %d has empty LHS", g.Name, i)
		}
		if _, clash := g.tokenIndex[r.LHS]; clash {
			return fmt.Errorf("grammar %s: %q is both a token and a nonterminal", g.Name, r.LHS)
		}
		g.ruleIndex[r.LHS] = append(g.ruleIndex[r.LHS], i)
	}
	if len(g.Rules) == 0 {
		return fmt.Errorf("grammar %s: no productions", g.Name)
	}
	if g.Start == "" {
		g.Start = g.Rules[0].LHS
	}
	if _, ok := g.ruleIndex[g.Start]; !ok {
		return fmt.Errorf("grammar %s: start symbol %q has no production", g.Name, g.Start)
	}
	for _, r := range g.Rules {
		for _, s := range r.RHS {
			switch s.Kind {
			case Terminal:
				if _, ok := g.tokenIndex[s.Name]; !ok {
					return fmt.Errorf("grammar %s: rule %q references undefined token %q", g.Name, r.LHS, s.Name)
				}
			case NonTerminal:
				if _, ok := g.ruleIndex[s.Name]; !ok {
					return fmt.Errorf("grammar %s: rule %q references undefined nonterminal %q", g.Name, r.LHS, s.Name)
				}
			default:
				return fmt.Errorf("grammar %s: rule %q has symbol with invalid kind %d", g.Name, r.LHS, s.Kind)
			}
		}
	}
	if err := g.checkReachable(); err != nil {
		return err
	}
	return g.checkProductive()
}

// checkProductive rejects grammars with nonterminals that cannot derive
// any terminal string: they would hang sentence generation and synthesize
// tokenizers that can never complete a parse.
func (g *Grammar) checkProductive() error {
	productive := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, r := range g.Rules {
			if productive[r.LHS] {
				continue
			}
			ok := true
			for _, s := range r.RHS {
				if s.Kind == NonTerminal && !productive[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				productive[r.LHS] = true
				changed = true
			}
		}
	}
	var dead []string
	for nt := range g.ruleIndex {
		if !productive[nt] {
			dead = append(dead, nt)
		}
	}
	if len(dead) > 0 {
		sort.Strings(dead)
		return fmt.Errorf("grammar %s: nonterminals derive no terminal string (unproductive): %s",
			g.Name, strings.Join(dead, ", "))
	}
	return nil
}

// checkReachable rejects grammars with nonterminals unreachable from the
// start symbol: they would silently generate no hardware, which is almost
// always a grammar-authoring mistake.
func (g *Grammar) checkReachable() error {
	reached := map[string]bool{g.Start: true}
	work := []string{g.Start}
	for len(work) > 0 {
		nt := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ri := range g.ruleIndex[nt] {
			for _, s := range g.Rules[ri].RHS {
				if s.Kind == NonTerminal && !reached[s.Name] {
					reached[s.Name] = true
					work = append(work, s.Name)
				}
			}
		}
	}
	var dead []string
	for nt := range g.ruleIndex {
		if !reached[nt] {
			dead = append(dead, nt)
		}
	}
	if len(dead) > 0 {
		sort.Strings(dead)
		return fmt.Errorf("grammar %s: nonterminals unreachable from %q: %s",
			g.Name, g.Start, strings.Join(dead, ", "))
	}
	return nil
}

// New builds and validates a Grammar from explicit parts. It is the
// programmatic alternative to parsing a grammar file.
func New(name string, tokens []TokenDef, rules []Rule, start, delim string) (*Grammar, error) {
	g := &Grammar{Name: name, Tokens: tokens, Rules: rules, Start: start, DelimPattern: delim}
	if err := g.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// Token returns the definition of the named terminal.
func (g *Grammar) Token(name string) (TokenDef, bool) {
	i, ok := g.tokenIndex[name]
	if !ok {
		return TokenDef{}, false
	}
	return g.Tokens[i], true
}

// TokenIndex returns the position of the named terminal in Tokens, or -1.
func (g *Grammar) TokenIndex(name string) int {
	i, ok := g.tokenIndex[name]
	if !ok {
		return -1
	}
	return i
}

// RulesFor returns the indexes into Rules of every production whose LHS is
// the given nonterminal, in source order.
func (g *Grammar) RulesFor(nonterminal string) []int {
	return g.ruleIndex[nonterminal]
}

// IsNonTerminal reports whether the name is a nonterminal of the grammar.
func (g *Grammar) IsNonTerminal(name string) bool {
	_, ok := g.ruleIndex[name]
	return ok
}

// NonTerminals returns all nonterminal names sorted alphabetically.
func (g *Grammar) NonTerminals() []string {
	out := make([]string, 0, len(g.ruleIndex))
	for nt := range g.ruleIndex {
		out = append(out, nt)
	}
	sort.Strings(out)
	return out
}

// PatternBytes returns the total number of pattern bytes across all
// terminals, the paper's grammar-size metric ("# of Bytes" in table 1). It
// counts the unescaped length of each token pattern once per token.
func (g *Grammar) PatternBytes() int {
	n := 0
	for _, t := range g.Tokens {
		n += patternLen(t.Pattern)
	}
	return n
}

// patternLen estimates the number of consuming characters in a regex
// pattern: escapes count as one, a character class counts as one, and the
// operators ( ) | * + ? contribute nothing. This matches the paper's "bytes
// of pattern data" accounting, where a class occupies one decoder input.
func patternLen(pattern string) int {
	n := 0
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '\\':
			i++
			n++
		case '[':
			for i++; i < len(pattern) && pattern[i] != ']'; i++ {
				if pattern[i] == '\\' {
					i++
				}
			}
			n++
		case '(', ')', '|', '*', '+', '?':
			// operators consume nothing
		default:
			n++
		}
	}
	return n
}

// String renders the grammar back in file format (definitions, %%,
// productions). Literal tokens are not repeated in the definitions section
// since they are defined by their use in productions.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, t := range g.Tokens {
		if !t.Literal {
			fmt.Fprintf(&b, "%s\t%s\n", t.Name, t.Pattern)
		}
	}
	if g.DelimPattern != DefaultDelimPattern {
		fmt.Fprintf(&b, "%%delim\t%s\n", g.DelimPattern)
	}
	if g.Start != g.Rules[0].LHS {
		fmt.Fprintf(&b, "%%start\t%s\n", g.Start)
	}
	b.WriteString("%%\n")
	// Group consecutive rules with the same LHS back into alternatives.
	for i := 0; i < len(g.Rules); {
		lhs := g.Rules[i].LHS
		fmt.Fprintf(&b, "%s:", lhs)
		first := true
		for ; i < len(g.Rules) && g.Rules[i].LHS == lhs; i++ {
			if !first {
				b.WriteString(" |")
			}
			first = false
			for _, s := range g.Rules[i].RHS {
				b.WriteByte(' ')
				if s.Kind == Terminal {
					if t, _ := g.Token(s.Name); t.Literal {
						fmt.Fprintf(&b, "%q", s.Name)
					} else {
						b.WriteString(s.Name)
					}
				} else {
					b.WriteString(s.Name)
				}
			}
		}
		b.WriteString(" ;\n")
	}
	return b.String()
}
