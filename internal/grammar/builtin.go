package grammar

// Built-in grammars taken from the paper. They double as test fixtures and
// as the workloads for the evaluation harness.

// BalancedParensSrc is the grammar of figure 1: "0" with balanced
// parentheses. Its single recursive nonterminal exercises the PDA→FSA
// collapse of section 3.1 (the generated hardware accepts a superset:
// unbalanced strings still tokenize).
const BalancedParensSrc = `
// Figure 1: E -> ( E ) | 0
%%
E : "(" E ")" | "0" ;
`

// IfThenElseSrc is the grammar of figure 9, used throughout section 3.3 to
// illustrate the Follow-set wiring (figures 10 and 11).
const IfThenElseSrc = `
// Figure 9: if-then-else statement
%%
E : "if" C "then" E "else" E | "go" | "stop" ;
C : "true" | "false" ;
`

// XMLRPCSrc is the Yacc-style grammar for XML-RPC of figure 14, converted
// from the DTD of figure 13. Two corrections to the figure as printed:
//
//   - the figure references member_list in the struct production but never
//     defines it (the DTD says struct has member+); the "+" is lowered to a
//     leading member plus an optional right-recursive tail, so no two
//     instances of the same token are enabled by one event (that would make
//     every <member> a gratuitous encoder conflict, section 3.4).
//   - the figure's data production holds a single value; the DTD says
//     value*, so a value_list is used.
//   - BASE64 is printed as a single-character class; a "+" is added so the
//     token covers a whole base64 run, and '=' padding is accepted.
//   - DOUBLE's dot is escaped to mean a literal '.'.
const XMLRPCSrc = `
STRING   [a-zA-Z0-9]+
INT      [+-]?[0-9]+
DOUBLE   [+-]?[0-9]+\.[0-9]+
YEAR     [0-9][0-9][0-9][0-9]
MONTH    [0-9][0-9]
DAY      [0-9][0-9]
HOUR     [0-9][0-9]
MIN      [0-9][0-9]
SEC      [0-9][0-9]
BASE64   [+/=A-Za-z0-9]+
%%
methodCall : "<methodCall>" methodName params "</methodCall>" ;
methodName : "<methodName>" STRING "</methodName>" ;
params     : "<params>" param "</params>" ;
param      : | "<param>" value "</param>" param ;
value      : i4 | int | string | dateTime | double | base64 | struct | array ;
i4         : "<i4>" INT "</i4>" ;
int        : "<int>" INT "</int>" ;
string     : "<string>" STRING "</string>" ;
dateTime   : "<dateTime.iso8601>" YEAR MONTH DAY 'T' HOUR ':' MIN ':' SEC "</dateTime.iso8601>" ;
double     : "<double>" DOUBLE "</double>" ;
base64     : "<base64>" BASE64 "</base64>" ;
struct     : "<struct>" member member_list "</struct>" ;
member_list: | member member_list ;
member     : "<member>" name value "</member>" ;
name       : "<name>" STRING "</name>" ;
array      : "<array>" data "</array>" ;
data       : "<data>" value_list "</data>" ;
value_list : | value value_list ;
%%
`

// XMLRPCFullSrc extends the figure 14 grammar to the real XML-RPC wire
// format: every value is wrapped in <value>/</value> tags (the figure, and
// the DTD of figure 13, leave value as a pure nonterminal — presumably the
// authors' test traffic omitted the wrappers). Useful when feeding the
// router real-world-shaped messages.
const XMLRPCFullSrc = `
STRING   [a-zA-Z0-9]+
INT      [+-]?[0-9]+
DOUBLE   [+-]?[0-9]+\.[0-9]+
YEAR     [0-9][0-9][0-9][0-9]
MONTH    [0-9][0-9]
DAY      [0-9][0-9]
HOUR     [0-9][0-9]
MIN      [0-9][0-9]
SEC      [0-9][0-9]
BASE64   [+/=A-Za-z0-9]+
%%
methodCall : "<methodCall>" methodName params "</methodCall>" ;
methodName : "<methodName>" STRING "</methodName>" ;
params     : "<params>" param "</params>" ;
param      : | "<param>" value "</param>" param ;
value      : "<value>" typed "</value>" ;
typed      : i4 | int | string | dateTime | double | base64 | struct | array ;
i4         : "<i4>" INT "</i4>" ;
int        : "<int>" INT "</int>" ;
string     : "<string>" STRING "</string>" ;
dateTime   : "<dateTime.iso8601>" YEAR MONTH DAY 'T' HOUR ':' MIN ':' SEC "</dateTime.iso8601>" ;
double     : "<double>" DOUBLE "</double>" ;
base64     : "<base64>" BASE64 "</base64>" ;
struct     : "<struct>" member member_list "</struct>" ;
member_list: | member member_list ;
member     : "<member>" name value "</member>" ;
name       : "<name>" STRING "</name>" ;
array      : "<array>" data "</array>" ;
data       : "<data>" value_list "</data>" ;
value_list : | value value_list ;
%%
`

// EnglishSrc is the small English fragment of the section 5.1
// natural-language application (grammars/english.y, examples/natlang):
// tagging a word reveals its part of speech via the production context.
// The recursive nominal chain and the shared word tokens make it the
// canonical non-trivial workload for the exact-language oracle.
const EnglishSrc = `
// Section 5.1: part-of-speech tagging via production context
%%
sentence : np vp ;
np       : det nominal ;
det      : "the" | "a" ;
nominal  : "big" nominal | "old" nominal | noun ;
noun     : "dog" | "cat" | "router" | "packet" ;
vp       : verb object ;
verb     : "sees" | "routes" | "parses" ;
object   : | np ;
`

// BalancedParens returns the figure 1 grammar.
func BalancedParens() *Grammar { return MustParse("balanced-parens", BalancedParensSrc) }

// IfThenElse returns the figure 9 grammar.
func IfThenElse() *Grammar { return MustParse("if-then-else", IfThenElseSrc) }

// XMLRPC returns the figure 14 grammar.
func XMLRPC() *Grammar { return MustParse("xml-rpc", XMLRPCSrc) }

// XMLRPCFull returns the real-wire-format grammar with <value> wrappers.
func XMLRPCFull() *Grammar { return MustParse("xml-rpc-full", XMLRPCFullSrc) }

// English returns the section 5.1 natural-language fragment.
func English() *Grammar { return MustParse("english", EnglishSrc) }
