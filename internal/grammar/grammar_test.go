package grammar

import (
	"strings"
	"testing"
)

func TestParseIfThenElse(t *testing.T) {
	g := IfThenElse()
	if g.Start != "E" {
		t.Errorf("start = %q, want E", g.Start)
	}
	wantTokens := []string{"if", "then", "else", "go", "stop", "true", "false"}
	if len(g.Tokens) != len(wantTokens) {
		t.Fatalf("got %d tokens (%v), want %d", len(g.Tokens), g.Tokens, len(wantTokens))
	}
	for _, w := range wantTokens {
		if _, ok := g.Token(w); !ok {
			t.Errorf("missing token %q", w)
		}
	}
	if n := len(g.Rules); n != 5 {
		t.Errorf("got %d rules, want 5 (3 for E, 2 for C)", n)
	}
	if got := len(g.RulesFor("E")); got != 3 {
		t.Errorf("E has %d alternatives, want 3", got)
	}
	if got := len(g.RulesFor("C")); got != 2 {
		t.Errorf("C has %d alternatives, want 2", got)
	}
	// First alternative of E must be: if C then E else E.
	r := g.Rules[g.RulesFor("E")[0]]
	want := []Symbol{
		{Terminal, "if"}, {NonTerminal, "C"}, {Terminal, "then"},
		{NonTerminal, "E"}, {Terminal, "else"}, {NonTerminal, "E"},
	}
	if len(r.RHS) != len(want) {
		t.Fatalf("E rule 0 RHS = %v", r.RHS)
	}
	for i := range want {
		if r.RHS[i] != want[i] {
			t.Errorf("E rule 0 symbol %d = %v, want %v", i, r.RHS[i], want[i])
		}
	}
}

func TestParseBalancedParens(t *testing.T) {
	g := BalancedParens()
	if g.Start != "E" {
		t.Errorf("start = %q", g.Start)
	}
	if len(g.Tokens) != 3 {
		t.Errorf("tokens = %v, want ( ) 0", g.Tokens)
	}
	// Literal tokens must have escaped patterns.
	tok, ok := g.Token("(")
	if !ok || tok.Pattern != `\(` || !tok.Literal {
		t.Errorf("token ( = %+v", tok)
	}
}

func TestParseXMLRPC(t *testing.T) {
	g := XMLRPC()
	if g.Start != "methodCall" {
		t.Errorf("start = %q", g.Start)
	}
	// The paper counts 45 tokens for this grammar; with the member_list /
	// value_list corrections the count stays in the same neighborhood.
	if n := len(g.Tokens); n < 40 || n > 50 {
		t.Errorf("token count = %d, want ~45", n)
	}
	// The paper reports approximately 300 bytes of pattern data.
	if b := g.PatternBytes(); b < 250 || b > 360 {
		t.Errorf("pattern bytes = %d, want ~300", b)
	}
	for _, name := range []string{"STRING", "INT", "DOUBLE", "YEAR", "BASE64", "<methodCall>", "</methodCall>", "T", ":"} {
		if _, ok := g.Token(name); !ok {
			t.Errorf("missing token %q", name)
		}
	}
	// param has an epsilon alternative.
	rules := g.RulesFor("param")
	if len(rules) != 2 || len(g.Rules[rules[0]].RHS) != 0 {
		t.Errorf("param alternatives wrong: %v", rules)
	}
}

func TestParseDirectives(t *testing.T) {
	g, err := Parse("t", `
A [ab]+
%delim [;]
%start S
%%
T : A ;
S : "x" T ;
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "S" {
		t.Errorf("start = %q, want S", g.Start)
	}
	if g.DelimPattern != "[;]" {
		t.Errorf("delim = %q", g.DelimPattern)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"no sections", "A [a]\n", "missing %%"},
		{"no productions", "%%\n", "no productions"},
		{"missing colon", "%%\nS \"x\" ;", "expected ':'"},
		{"missing semicolon", "%%\nS : \"x\"", "missing ';'"},
		{"undefined nonterminal", "%%\nS : T ;", "undefined nonterminal"},
		{"duplicate token def", "A [a]\nA [b]\n%%\nS : A ;", "duplicate definition"},
		{"empty literal", "%%\nS : \"\" ;", "empty string literal"},
		{"unterminated literal", "%%\nS : \"x ;", "unterminated"},
		{"unknown directive", "%bogus x\n%%\nS : \"x\" ;", "unknown directive"},
		{"missing pattern", "A\n%%\nS : A ;", "missing pattern"},
		{"bad start", "%start Q\n%%\nS : \"x\" ;", `start symbol "Q"`},
		{"unreachable", "%%\nS : \"x\" ; T : \"y\" ;", "unreachable"},
		{"unproductive", "%%\nS : \"x\" T ;\nT : T \"y\" ;", "unproductive"},
		{"mutually unproductive", "%%\nS : A ;\nA : B ;\nB : A ;", "unproductive"},
		{"token as lhs", "A [a]\n%%\nA : \"x\" ;", "both a token and a nonterminal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	g, err := Parse("t", `
# hash comment
A [a]+   // trailing comment
// full-line comment
%%
S : A   // comment inside productions
  | "b" ;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tokens) != 2 {
		t.Errorf("tokens = %v", g.Tokens)
	}
	if got, _ := g.Token("A"); got.Pattern != "[a]+" {
		t.Errorf("pattern = %q, comment not stripped", got.Pattern)
	}
}

func TestParseCharLiterals(t *testing.T) {
	// Both 'T' and the paper's backquote form must work.
	g, err := Parse("t", "%%\nS : 'a' `b' ;\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Token("a"); !ok {
		t.Error("missing token 'a'")
	}
	if _, ok := g.Token("b"); !ok {
		t.Error("missing token `b'")
	}
}

func TestParseTrailerIgnored(t *testing.T) {
	g, err := Parse("t", "%%\nS : \"x\" ;\n%%\nthis is C code { not a grammar }\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rules) != 1 {
		t.Errorf("rules = %v", g.Rules)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, g := range []*Grammar{BalancedParens(), IfThenElse(), XMLRPC(), XMLRPCFull()} {
		src := g.String()
		g2, err := Parse(g.Name+"-rt", src)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\nsource:\n%s", g.Name, err, src)
		}
		if len(g2.Tokens) != len(g.Tokens) || len(g2.Rules) != len(g.Rules) {
			t.Errorf("%s: round trip changed shape: %d/%d tokens, %d/%d rules",
				g.Name, len(g2.Tokens), len(g.Tokens), len(g2.Rules), len(g.Rules))
		}
		if g2.Start != g.Start {
			t.Errorf("%s: start %q != %q", g.Name, g2.Start, g.Start)
		}
		for i := range g.Tokens {
			if g2.Tokens[i] != g.Tokens[i] {
				t.Errorf("%s: token %d: %+v != %+v", g.Name, i, g2.Tokens[i], g.Tokens[i])
			}
		}
	}
}

func TestEscapeLiteral(t *testing.T) {
	cases := map[string]string{
		"abc":           "abc",
		"<tag>":         "<tag>",
		"a.b":           `a\.b`,
		"(x)|[y]*+?^$.": `\(x\)\|\[y\]\*\+\?\^\$\.`,
		"a\nb\tc":       `a\nb\tc`,
	}
	for in, want := range cases {
		if got := EscapeLiteral(in); got != want {
			t.Errorf("EscapeLiteral(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPatternBytes(t *testing.T) {
	g, err := Parse("t", "A [a-z]+x\\.y\n%%\nS : A \"hi\" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	// A = class(1) + x(1) + dot(1) + y(1) = 4; "hi" = 2.
	if got := g.PatternBytes(); got != 6 {
		t.Errorf("PatternBytes = %d, want 6", got)
	}
}

func TestRuleString(t *testing.T) {
	g := IfThenElse()
	r := g.Rules[g.RulesFor("C")[0]]
	if got := r.String(); got != `C -> "true"` {
		t.Errorf("rule string = %q", got)
	}
	eps := Rule{LHS: "x"}
	if got := eps.String(); got != "x -> ε" {
		t.Errorf("epsilon rule string = %q", got)
	}
}

func TestDTDParse(t *testing.T) {
	els, err := ParseDTD(XMLRPCDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 16 {
		t.Fatalf("got %d elements, want 16", len(els))
	}
	if els[0].Name != "methodCall" {
		t.Errorf("first element = %q", els[0].Name)
	}
	// methodCall content must be a sequence of two names.
	c := els[0].Content
	if c.op != dtdSeq || len(c.kids) != 2 || c.kids[0].name != "methodName" || c.kids[1].name != "params" {
		t.Errorf("methodCall content parsed wrong: %+v", c)
	}
	// value is an 8-way alternation.
	for _, el := range els {
		if el.Name == "value" {
			if el.Content.op != dtdAlt || len(el.Content.kids) != 8 {
				t.Errorf("value content: %+v", el.Content)
			}
		}
		if el.Name == "struct" {
			if el.Content.op != dtdPlus {
				t.Errorf("struct content should be member+: %+v", el.Content)
			}
		}
		if el.Name == "params" {
			if el.Content.op != dtdStar {
				t.Errorf("params content should be param*: %+v", el.Content)
			}
		}
	}
}

func TestDTDConvert(t *testing.T) {
	els, err := ParseDTD(XMLRPCDTD)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromDTD("xmlrpc-from-dtd", els, DTDOptions{
		PCData: map[string]string{
			"i4": "INT", "int": "INT", "double": "DOUBLE", "base64": "BASE64",
			"dateTime.iso8601": "DATETIME",
		},
		Classes: []TokenDef{
			{Name: "STRING", Pattern: `[a-zA-Z0-9]+`},
			{Name: "INT", Pattern: `[+-]?[0-9]+`},
			{Name: "DOUBLE", Pattern: `[+-]?[0-9]+\.[0-9]+`},
			{Name: "BASE64", Pattern: `[+/=A-Za-z0-9]+`},
			{Name: "DATETIME", Pattern: `[0-9]+T[0-9]+:[0-9]+:[0-9]+`},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "methodCall" {
		t.Errorf("start = %q", g.Start)
	}
	for _, name := range []string{"<methodCall>", "</methodCall>", "<struct>", "</dateTime.iso8601>"} {
		if _, ok := g.Token(name); !ok {
			t.Errorf("missing tag token %q", name)
		}
	}
	// struct had member+, lowered to a leading member plus a star tail:
	// struct : "<struct>" member member_listN "</struct>".
	found := false
	for _, ri := range g.RulesFor("struct") {
		rhs := g.Rules[ri].RHS
		if len(rhs) == 4 && rhs[1].Name == "member" && strings.HasPrefix(rhs[2].Name, "member_list") {
			found = true
			tail := g.RulesFor(rhs[2].Name)
			if len(tail) != 2 || len(g.Rules[tail[0]].RHS) != 0 {
				t.Errorf("member+ tail alternatives wrong: %v", tail)
			}
		}
	}
	if !found {
		t.Error("member+ not lowered to head + star tail")
	}
}

func TestDTDErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"empty", "", "no element declarations"},
		{"unterminated", "<!ELEMENT a (b)", "unterminated"},
		{"mixed seps", "<!ELEMENT a (b, c | d)>", "mixed"},
		{"undeclared ref", "<!ELEMENT a (b)>", "undeclared element"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			els, err := ParseDTD(tc.src)
			if err == nil {
				_, err = FromDTD("t", els, DTDOptions{})
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDTDCommentsSkipped(t *testing.T) {
	els, err := ParseDTD("<!-- c --><!ELEMENT a (#PCDATA)><!-- d -->")
	if err != nil || len(els) != 1 {
		t.Fatalf("els=%v err=%v", els, err)
	}
}
