package grammar

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error in a grammar file with its position.
type ParseError struct {
	Name string // grammar name (file label)
	Line int    // 1-based line
	Col  int    // 1-based column
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.Name, e.Line, e.Col, e.Msg)
}

// Parse reads a grammar in the two-section Lex/Yacc-style file format
// described in the package comment and returns the validated Grammar.
func Parse(name, src string) (*Grammar, error) {
	p := &parser{name: name, src: src, line: 1, col: 1}
	g, err := p.parse()
	if err != nil {
		return nil, err
	}
	g.Name = name
	if err := g.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse is Parse for known-good built-in grammars; it panics on error.
func MustParse(name, src string) *Grammar {
	g, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	name string
	src  string
	pos  int
	line int
	col  int

	tokens   []TokenDef
	rules    []Rule
	start    string
	delim    string
	defined  map[string]bool // named terminal classes
	literals map[string]bool // anonymous literal terminals already added
	lhsSeen  map[string]bool
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Name: p.name, Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

// skipSpace consumes blanks, newlines and comments. If sameLine is true it
// stops at a newline (for the line-oriented definitions section).
func (p *parser) skipSpace(sameLine bool) {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == '\n':
			if sameLine {
				return
			}
			p.advance()
		case c == ' ' || c == '\t' || c == '\r':
			p.advance()
		case c == '#' || (c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/'):
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func (p *parser) ident() string {
	start := p.pos
	for !p.eof() && isIdentChar(p.peek()) {
		p.advance()
	}
	return p.src[start:p.pos]
}

// restOfLine consumes to end of line and returns the trimmed text with any
// trailing comment removed.
func (p *parser) restOfLine() string {
	start := p.pos
	for !p.eof() && p.peek() != '\n' {
		p.advance()
	}
	text := p.src[start:p.pos]
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	if i := strings.IndexByte(text, '#'); i >= 0 {
		text = text[:i]
	}
	return strings.TrimSpace(text)
}

func (p *parser) atSectionMark() bool {
	if !strings.HasPrefix(p.src[p.pos:], "%%") {
		return false
	}
	rest := p.src[p.pos+2:]
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case ' ', '\t', '\r':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true // %% at EOF
}

func (p *parser) parse() (*Grammar, error) {
	p.defined = make(map[string]bool)
	p.literals = make(map[string]bool)
	p.lhsSeen = make(map[string]bool)
	if err := p.parseDefinitions(); err != nil {
		return nil, err
	}
	if err := p.parseProductions(); err != nil {
		return nil, err
	}
	return &Grammar{
		Tokens:       p.tokens,
		Rules:        p.rules,
		Start:        p.start,
		DelimPattern: p.delim,
	}, nil
}

func (p *parser) parseDefinitions() error {
	for {
		p.skipSpace(false)
		if p.eof() {
			return p.errf("missing %%%% section separator")
		}
		if p.atSectionMark() {
			p.advance()
			p.advance()
			return nil
		}
		c := p.peek()
		switch {
		case c == '%':
			p.advance()
			dir := p.ident()
			p.skipSpace(true)
			arg := p.restOfLine()
			switch dir {
			case "delim":
				if arg == "" {
					return p.errf("%%delim requires a pattern")
				}
				p.delim = arg
			case "start":
				if arg == "" {
					return p.errf("%%start requires a nonterminal name")
				}
				p.start = arg
			default:
				return p.errf("unknown directive %%%s", dir)
			}
		case isIdentStart(c):
			name := p.ident()
			p.skipSpace(true)
			pattern := p.restOfLine()
			if pattern == "" {
				return p.errf("token %s: missing pattern", name)
			}
			if p.defined[name] {
				return p.errf("token %s: duplicate definition", name)
			}
			p.defined[name] = true
			p.tokens = append(p.tokens, TokenDef{Name: name, Pattern: pattern})
		default:
			return p.errf("unexpected character %q in definitions section", c)
		}
	}
}

func (p *parser) parseProductions() error {
	sawAny := false
	for {
		p.skipSpace(false)
		if p.eof() {
			if !sawAny {
				return p.errf("no productions")
			}
			return nil
		}
		if p.atSectionMark() {
			// Optional trailer section: ignore everything after it.
			return nil
		}
		if !isIdentStart(p.peek()) {
			return p.errf("expected production name, found %q", p.peek())
		}
		lhs := p.ident()
		p.skipSpace(false)
		if p.eof() || p.peek() != ':' {
			return p.errf("production %s: expected ':'", lhs)
		}
		p.advance()
		if err := p.parseAlternatives(lhs); err != nil {
			return err
		}
		p.lhsSeen[lhs] = true
		sawAny = true
	}
}

func (p *parser) parseAlternatives(lhs string) error {
	var rhs []Symbol
	flush := func() {
		p.rules = append(p.rules, Rule{LHS: lhs, RHS: rhs})
		rhs = nil
	}
	for {
		p.skipSpace(false)
		if p.eof() {
			return p.errf("production %s: missing ';'", lhs)
		}
		switch c := p.peek(); {
		case c == ';':
			p.advance()
			flush()
			return nil
		case c == '|':
			p.advance()
			flush()
		case c == '"':
			lit, err := p.quoted('"')
			if err != nil {
				return err
			}
			p.addLiteral(lit)
			rhs = append(rhs, Symbol{Kind: Terminal, Name: lit})
		case c == '\'' || c == '`':
			// Accept both 'T' and the paper's `T' form.
			open := p.advance()
			close := byte('\'')
			_ = open
			var sb strings.Builder
			for {
				if p.eof() {
					return p.errf("production %s: unterminated character literal", lhs)
				}
				ch := p.advance()
				if ch == close {
					break
				}
				if ch == '\\' {
					esc, err := p.unescape()
					if err != nil {
						return err
					}
					ch = esc
				}
				sb.WriteByte(ch)
			}
			lit := sb.String()
			if lit == "" {
				return p.errf("production %s: empty character literal", lhs)
			}
			p.addLiteral(lit)
			rhs = append(rhs, Symbol{Kind: Terminal, Name: lit})
		case isIdentStart(c):
			name := p.ident()
			kind := NonTerminal
			if p.defined[name] {
				kind = Terminal
			}
			rhs = append(rhs, Symbol{Kind: kind, Name: name})
		default:
			return p.errf("production %s: unexpected character %q", lhs, c)
		}
	}
}

func (p *parser) quoted(q byte) (string, error) {
	p.advance() // opening quote
	var sb strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated string literal")
		}
		c := p.advance()
		if c == q {
			break
		}
		if c == '\\' {
			esc, err := p.unescape()
			if err != nil {
				return "", err
			}
			c = esc
		}
		sb.WriteByte(c)
	}
	if sb.Len() == 0 {
		return "", p.errf("empty string literal")
	}
	return sb.String(), nil
}

// unescape resolves the character after a backslash in a string or
// character literal, matching the regex subset's escapes (including \xNN).
func (p *parser) unescape() (byte, error) {
	if p.eof() {
		return 0, p.errf("dangling escape in literal")
	}
	c := p.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'x':
		if p.pos+1 >= len(p.src) {
			return 0, p.errf(`\x needs two hex digits`)
		}
		hi, ok1 := hexVal(p.advance())
		lo, ok2 := hexVal(p.advance())
		if !ok1 || !ok2 {
			return 0, p.errf(`\x needs two hex digits`)
		}
		return hi<<4 | lo, nil
	default:
		return c, nil
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// addLiteral registers an anonymous literal terminal the first time it is
// seen, escaping regex metacharacters so the literal text doubles as its
// pattern.
func (p *parser) addLiteral(lit string) {
	if p.literals[lit] || p.defined[lit] {
		p.literals[lit] = true
		return
	}
	p.literals[lit] = true
	p.tokens = append(p.tokens, TokenDef{Name: lit, Pattern: EscapeLiteral(lit), Literal: true})
}

// EscapeLiteral escapes regex metacharacters in a literal string so the
// result matches the string exactly when compiled as a pattern.
func EscapeLiteral(lit string) string {
	var sb strings.Builder
	for i := 0; i < len(lit); i++ {
		c := lit[i]
		switch c {
		case '\\', '[', ']', '(', ')', '|', '*', '+', '?', '.', '^', '$':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
