package grammar

import (
	"fmt"
	"strings"
)

// This file implements the figure 13 → figure 14 step: converting an XML
// Document Type Definition into a grammar in the production format the
// hardware generator consumes. Only the DTD subset needed for element
// declarations is supported:
//
//	<!ELEMENT name (content)>
//
// where content is a sequence (a, b), a choice (a | b), an optionally
// repeated group (x*, x+, x?) or #PCDATA. Comments (<!-- -->) are skipped.
//
// Each element E becomes a production  e : "<E>" content "</E>" ;  with
// repetition operators lowered to fresh list nonterminals, exactly the shape
// of figure 14. #PCDATA content maps to a terminal class chosen by the
// caller per element (the paper assigns INT to i4, STRING to methodName,
// and so on); unmapped PCDATA elements default to STRING.

// DTDElement is one parsed <!ELEMENT> declaration.
type DTDElement struct {
	Name    string
	Content *dtdNode
}

type dtdOp uint8

const (
	dtdName dtdOp = iota // reference to another element
	dtdPCD               // #PCDATA
	dtdSeq               // a, b, c
	dtdAlt               // a | b | c
	dtdStar              // x*
	dtdPlus              // x+
	dtdOpt               // x?
)

type dtdNode struct {
	op   dtdOp
	name string
	kids []*dtdNode
}

// ParseDTD parses the element declarations of a DTD document.
func ParseDTD(src string) ([]DTDElement, error) {
	var out []DTDElement
	rest := src
	for {
		i := strings.Index(rest, "<!")
		if i < 0 {
			break
		}
		rest = rest[i:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest, "-->")
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated comment")
			}
			rest = rest[end+3:]
		case strings.HasPrefix(rest, "<!ELEMENT"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated <!ELEMENT")
			}
			decl := strings.TrimSpace(rest[len("<!ELEMENT"):end])
			rest = rest[end+1:]
			el, err := parseElementDecl(decl)
			if err != nil {
				return nil, err
			}
			out = append(out, el)
		default:
			// Unsupported declaration (<!ATTLIST etc.): skip it.
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return nil, fmt.Errorf("dtd: unterminated declaration")
			}
			rest = rest[end+1:]
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations found")
	}
	return out, nil
}

func parseElementDecl(decl string) (DTDElement, error) {
	fields := strings.Fields(decl)
	if len(fields) < 2 {
		return DTDElement{}, fmt.Errorf("dtd: malformed element declaration %q", decl)
	}
	name := fields[0]
	content := strings.TrimSpace(strings.TrimPrefix(decl, name))
	node, rest, err := parseDTDContent(content)
	if err != nil {
		return DTDElement{}, fmt.Errorf("dtd: element %s: %w", name, err)
	}
	if strings.TrimSpace(rest) != "" {
		return DTDElement{}, fmt.Errorf("dtd: element %s: trailing content %q", name, rest)
	}
	return DTDElement{Name: name, Content: node}, nil
}

// parseDTDContent parses one content particle: a parenthesized group, a
// name, or #PCDATA, with an optional trailing * + ? modifier.
func parseDTDContent(s string) (*dtdNode, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, "", fmt.Errorf("empty content model")
	}
	var node *dtdNode
	switch {
	case s[0] == '(':
		inner, rest, err := parseDTDGroup(s[1:])
		if err != nil {
			return nil, "", err
		}
		node, s = inner, rest
	case strings.HasPrefix(s, "#PCDATA"):
		node, s = &dtdNode{op: dtdPCD}, s[len("#PCDATA"):]
	default:
		i := 0
		for i < len(s) && (isIdentChar(s[i]) || s[i] == '-') {
			i++
		}
		if i == 0 {
			return nil, "", fmt.Errorf("unexpected character %q", s[0])
		}
		node, s = &dtdNode{op: dtdName, name: s[:i]}, s[i:]
	}
	if len(s) > 0 {
		switch s[0] {
		case '*':
			node, s = &dtdNode{op: dtdStar, kids: []*dtdNode{node}}, s[1:]
		case '+':
			node, s = &dtdNode{op: dtdPlus, kids: []*dtdNode{node}}, s[1:]
		case '?':
			node, s = &dtdNode{op: dtdOpt, kids: []*dtdNode{node}}, s[1:]
		}
	}
	return node, s, nil
}

// parseDTDGroup parses the inside of a parenthesized group up to and
// including the closing ')'.
func parseDTDGroup(s string) (*dtdNode, string, error) {
	var parts []*dtdNode
	sep := byte(0)
	for {
		node, rest, err := parseDTDContent(s)
		if err != nil {
			return nil, "", err
		}
		parts = append(parts, node)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated group")
		}
		switch rest[0] {
		case ')':
			if len(parts) == 1 {
				return parts[0], rest[1:], nil
			}
			op := dtdSeq
			if sep == '|' {
				op = dtdAlt
			}
			return &dtdNode{op: op, kids: parts}, rest[1:], nil
		case ',', '|':
			if sep != 0 && sep != rest[0] {
				return nil, "", fmt.Errorf("mixed ',' and '|' in one group")
			}
			sep = rest[0]
			s = rest[1:]
		default:
			return nil, "", fmt.Errorf("unexpected %q in group", rest[0])
		}
	}
}

// DTDOptions configures FromDTD.
type DTDOptions struct {
	// PCData maps element names with #PCDATA content to the named terminal
	// class that should recognize their text (the paper assigns INT to i4
	// and int, DOUBLE to double, and so on). Elements not listed use
	// "STRING".
	PCData map[string]string
	// Classes supplies the terminal class definitions referenced by PCData.
	// If nil, a STRING [a-zA-Z0-9]+ class is provided automatically.
	Classes []TokenDef
	// Start selects the root element; defaults to the first declaration.
	Start string
}

// FromDTD converts parsed element declarations into a Grammar with the
// figure 14 shape: every element becomes a production wrapped in its open
// and close tags, and *, + and ? content is lowered to fresh list
// nonterminals.
func FromDTD(name string, elements []DTDElement, opts DTDOptions) (*Grammar, error) {
	c := &dtdConverter{
		opts:     opts,
		elements: make(map[string]bool, len(elements)),
		classes:  make(map[string]bool),
	}
	for _, t := range opts.Classes {
		c.tokens = append(c.tokens, t)
		c.classes[t.Name] = true
	}
	if !c.classes["STRING"] {
		c.tokens = append(c.tokens, TokenDef{Name: "STRING", Pattern: `[a-zA-Z0-9]+`})
		c.classes["STRING"] = true
	}
	for _, el := range elements {
		c.elements[el.Name] = true
	}
	for _, el := range elements {
		if err := c.element(el); err != nil {
			return nil, err
		}
	}
	start := opts.Start
	if start == "" {
		start = nonterminalFor(elements[0].Name)
	} else {
		start = nonterminalFor(start)
	}
	return New(name, c.tokens, c.rules, start, "")
}

type dtdConverter struct {
	opts     DTDOptions
	elements map[string]bool
	classes  map[string]bool
	tokens   []TokenDef
	rules    []Rule
	lits     map[string]bool
	listSeq  int
}

// nonterminalFor converts an element name to a production name. Dots are
// legal in identifiers in this grammar format, so names like
// dateTime.iso8601 survive unchanged.
func nonterminalFor(element string) string { return element }

func (c *dtdConverter) literal(text string) Symbol {
	if c.lits == nil {
		c.lits = make(map[string]bool)
	}
	if !c.lits[text] {
		c.lits[text] = true
		c.tokens = append(c.tokens, TokenDef{Name: text, Pattern: EscapeLiteral(text), Literal: true})
	}
	return Symbol{Kind: Terminal, Name: text}
}

func (c *dtdConverter) class(name string) Symbol {
	if !c.classes[name] {
		c.classes[name] = true
		c.tokens = append(c.tokens, TokenDef{Name: name, Pattern: `[a-zA-Z0-9]+`})
	}
	return Symbol{Kind: Terminal, Name: name}
}

func (c *dtdConverter) element(el DTDElement) error {
	open := c.literal("<" + el.Name + ">")
	closing := c.literal("</" + el.Name + ">")
	body, err := c.lower(el.Name, el.Content)
	if err != nil {
		return err
	}
	for _, alt := range body {
		rhs := append([]Symbol{open}, alt...)
		rhs = append(rhs, closing)
		c.rules = append(c.rules, Rule{LHS: nonterminalFor(el.Name), RHS: rhs})
	}
	return nil
}

// lower converts a content node into one or more alternative symbol
// sequences, creating helper list nonterminals for repetition.
func (c *dtdConverter) lower(elem string, n *dtdNode) ([][]Symbol, error) {
	switch n.op {
	case dtdPCD:
		class := c.opts.PCData[elem]
		if class == "" {
			class = "STRING"
		}
		return [][]Symbol{{c.class(class)}}, nil
	case dtdName:
		if !c.elements[n.name] {
			return nil, fmt.Errorf("dtd: element %s references undeclared element %s", elem, n.name)
		}
		return [][]Symbol{{Symbol{Kind: NonTerminal, Name: nonterminalFor(n.name)}}}, nil
	case dtdSeq:
		seqs := [][]Symbol{nil}
		for _, kid := range n.kids {
			alts, err := c.lower(elem, kid)
			if err != nil {
				return nil, err
			}
			var next [][]Symbol
			for _, prefix := range seqs {
				for _, alt := range alts {
					row := make([]Symbol, 0, len(prefix)+len(alt))
					row = append(row, prefix...)
					row = append(row, alt...)
					next = append(next, row)
				}
			}
			seqs = next
		}
		return seqs, nil
	case dtdAlt:
		var out [][]Symbol
		for _, kid := range n.kids {
			alts, err := c.lower(elem, kid)
			if err != nil {
				return nil, err
			}
			out = append(out, alts...)
		}
		return out, nil
	case dtdStar, dtdPlus, dtdOpt:
		alts, err := c.lower(elem, n.kids[0])
		if err != nil {
			return nil, err
		}
		if len(alts) != 1 || len(alts[0]) != 1 || alts[0][0].Kind != NonTerminal {
			return nil, fmt.Errorf("dtd: element %s: repetition of non-trivial groups is not supported", elem)
		}
		item := alts[0][0]
		switch n.op {
		case dtdOpt:
			return [][]Symbol{{}, {item}}, nil
		case dtdStar:
			list := c.freshList(item.Name)
			c.rules = append(c.rules,
				Rule{LHS: list, RHS: nil},
				Rule{LHS: list, RHS: []Symbol{item, {Kind: NonTerminal, Name: list}}},
			)
			return [][]Symbol{{{Kind: NonTerminal, Name: list}}}, nil
		default: // dtdPlus: a leading item followed by a star tail, so the
			// item's tokenizers are never doubly enabled by one event.
			list := c.freshList(item.Name)
			c.rules = append(c.rules,
				Rule{LHS: list, RHS: nil},
				Rule{LHS: list, RHS: []Symbol{item, {Kind: NonTerminal, Name: list}}},
			)
			return [][]Symbol{{item, {Kind: NonTerminal, Name: list}}}, nil
		}
	default:
		return nil, fmt.Errorf("dtd: element %s: unsupported content node", elem)
	}
}

func (c *dtdConverter) freshList(item string) string {
	c.listSeq++
	return fmt.Sprintf("%s_list%d", item, c.listSeq)
}

// XMLRPCDTD is the DTD of figure 13.
const XMLRPCDTD = `
<!ELEMENT methodCall       (methodName, params)>
<!ELEMENT methodName       (#PCDATA)>
<!ELEMENT params           (param*)>
<!ELEMENT param            (value)>
<!ELEMENT value            (i4|int|string|dateTime.iso8601|double|base64|struct|array)>
<!ELEMENT i4               (#PCDATA)>
<!ELEMENT int              (#PCDATA)>
<!ELEMENT string           (#PCDATA)>
<!ELEMENT dateTime.iso8601 (#PCDATA)>
<!ELEMENT double           (#PCDATA)>
<!ELEMENT base64           (#PCDATA)>
<!ELEMENT array            (data)>
<!ELEMENT data             (value*)>
<!ELEMENT struct           (member+)>
<!ELEMENT member           (name, value)>
<!ELEMENT name             (#PCDATA)>
`
