package fpga

import (
	"fmt"
	"strings"

	"cfgtag/internal/netlist"
)

// mapNetlist covers the combinational network with K-input LUT cones.
// A combinational gate becomes a LUT root when it drives a register or
// primary output, or is shared (fanout ≥ 2, inverters excepted — LUT
// inputs invert for free, so NOT gates are absorbed into consumers and
// duplicated where shared). Non-root single-fanout gates are absorbed into
// their consumer's cone; when a cone would exceed K inputs, the offending
// child is promoted to a root of its own. This is the classic greedy cone
// packing of FPGA technology mappers — enough fidelity for the area trend
// the paper reports.
//
// Precondition (checked by Synthesize): every gate has fanin ≤ K. The
// hardware generator builds bounded-arity trees, so this always holds for
// generated designs.
type mapResult struct {
	lutCount       int
	regCount       int
	maxDepth       int
	maxFanout      int
	maxFanoutLabel string
	breakdown      map[string]int
}

func isComb(g netlist.Gate) bool {
	return g.Op == netlist.OpAnd || g.Op == netlist.OpOr || g.Op == netlist.OpNot
}

func mapNetlist(n *netlist.Netlist, k int) *mapResult {
	gates := n.Gates
	fanout := n.Fanout()
	root := make([]bool, len(gates))

	// Seed roots: combinational drivers of registers (D and enable) and of
	// primary outputs, plus shared non-inverter gates.
	for i, g := range gates {
		if g.Op == netlist.OpReg {
			seedRoot(n, g.In[0], root)
			if g.Enable != netlist.Invalid {
				seedRoot(n, g.Enable, root)
			}
		}
		if isComb(g) && g.Op != netlist.OpNot && fanout[i] >= 2 {
			root[i] = true
		}
	}
	for _, p := range n.Outputs {
		seedRoot(n, p.Wire, root)
	}

	// Build cones, promoting children when a cone overflows K inputs;
	// promotion only adds roots, so iteration terminates.
	var cones map[netlist.Wire][]netlist.Wire
	for {
		cones = make(map[netlist.Wire][]netlist.Wire)
		promotedAny := false
		for i := range gates {
			if !root[i] {
				continue
			}
			leaves, promoted := buildCone(n, netlist.Wire(i), root, k)
			promotedAny = promotedAny || promoted
			cones[netlist.Wire(i)] = leaves
		}
		if !promotedAny {
			break
		}
	}

	res := &mapResult{breakdown: make(map[string]int)}
	leafRefs := make([]int, len(gates))
	for w, leaves := range cones {
		res.lutCount++
		res.breakdown[groupOf(n, w)]++
		for _, leaf := range leaves {
			leafRefs[leaf]++
		}
	}
	for _, g := range gates {
		if g.Op == netlist.OpReg {
			res.regCount++
			leafRefs[passNot(n, g.In[0])]++
			if g.Enable != netlist.Invalid {
				leafRefs[passNot(n, g.Enable)]++
			}
		}
	}
	for i, refs := range leafRefs {
		if refs > res.maxFanout {
			res.maxFanout = refs
			res.maxFanoutLabel = gates[i].Label
		}
	}

	// Depth: LUT levels from sequential/primary sources to each root.
	depth := make(map[netlist.Wire]int)
	var depthOf func(w netlist.Wire) int
	depthOf = func(w netlist.Wire) int {
		if d, ok := depth[w]; ok {
			return d
		}
		depth[w] = 1 // guards against malformed recursion
		d := 1
		for _, leaf := range cones[w] {
			if root[leaf] {
				if dd := depthOf(leaf) + 1; dd > d {
					d = dd
				}
			}
		}
		depth[w] = d
		return d
	}
	for w := range cones {
		if d := depthOf(w); d > res.maxDepth {
			res.maxDepth = d
		}
	}
	if res.lutCount > 0 && res.maxDepth == 0 {
		res.maxDepth = 1
	}
	return res
}

// seedRoot marks the combinational driver behind w (through inverters) as
// a LUT root.
func seedRoot(n *netlist.Netlist, w netlist.Wire, root []bool) {
	w = passNot(n, w)
	if isComb(n.Gates[w]) {
		root[w] = true
	}
}

// buildCone collects the leaf set of one root's cone. walk returns false
// when the K-input budget is exhausted; the caller then promotes the
// absorbable child it was descending into and re-adds it as a leaf.
func buildCone(n *netlist.Netlist, w netlist.Wire, root []bool, k int) (leaves []netlist.Wire, promoted bool) {
	gates := n.Gates
	seen := make(map[netlist.Wire]bool)
	addLeaf := func(c netlist.Wire) bool {
		if seen[c] {
			return true
		}
		if len(leaves) >= k {
			return false
		}
		seen[c] = true
		leaves = append(leaves, c)
		return true
	}
	var walk func(c netlist.Wire) bool
	walk = func(c netlist.Wire) bool {
		c = passNot(n, c)
		g := gates[c]
		if !isComb(g) || root[c] {
			return addLeaf(c)
		}
		// Absorbable gate: take its fanin instead; on overflow, roll back
		// and promote it to a root of its own.
		mark := len(leaves)
		for _, in := range g.In {
			if !walk(in) {
				for _, l := range leaves[mark:] {
					delete(seen, l)
				}
				leaves = leaves[:mark]
				root[c] = true
				promoted = true
				return addLeaf(c)
			}
		}
		return true
	}

	g := gates[w]
	if g.Op == netlist.OpNot {
		// A root inverter (driving a register directly) is a 1-input LUT;
		// whatever it inverts must itself be a mappable net.
		target := passNot(n, g.In[0])
		if isComb(gates[target]) && !root[target] {
			root[target] = true
			promoted = true
		}
		return []netlist.Wire{target}, promoted
	}
	for _, in := range g.In {
		if !walk(in) {
			// Even direct fanin does not fit (can only happen while
			// promotions are still propagating): fall back to mapping the
			// root over its immediate fanin nets.
			leaves = leaves[:0]
			for _, in2 := range g.In {
				c := passNot(n, in2)
				if isComb(gates[c]) && !root[c] {
					root[c] = true
					promoted = true
				}
				leaves = append(leaves, c)
			}
			return leaves, promoted
		}
	}
	return leaves, promoted
}

// passNot skips inverters to the driven wire.
func passNot(n *netlist.Netlist, w netlist.Wire) netlist.Wire {
	for n.Gates[w].Op == netlist.OpNot {
		w = n.Gates[w].In[0]
	}
	return w
}

// groupOf buckets a gate by its label prefix (text before the first '/').
func groupOf(n *netlist.Netlist, w netlist.Wire) string {
	l := n.Gates[w].Label
	if l == "" {
		return "other"
	}
	if i := strings.IndexByte(l, '/'); i >= 0 {
		return l[:i]
	}
	return l
}

// checkArity enforces the mapper's fanin precondition.
func checkArity(n *netlist.Netlist, k int) error {
	for i, g := range n.Gates {
		if isComb(g) && len(g.In) > k {
			return fmt.Errorf("fpga: gate %d (%s, %q) has fanin %d > LUT inputs %d",
				i, g.Op, g.Label, len(g.In), k)
		}
	}
	return nil
}
