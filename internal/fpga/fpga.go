// Package fpga models the evaluation substrate of section 4.3: technology
// mapping of the generated netlist into 4-input LUTs and a timing model
// that reproduces the paper's synthesis results (table 1, figure 15)
// without a vendor toolchain.
//
// Area is real: the mapper covers the AND/OR/NOT network with ≤ K input
// cones (greedily absorbing single-fanout fanin gates, the core move of
// FPGA technology mappers), so LUT counts — and the LUTs-per-byte trend
// the paper highlights — emerge from the actual generated structure.
//
// Frequency is modeled: the paper's own timing analysis attributes the
// critical path entirely to the routing fanout of decoded character wires
// (~2 ns at 3000 pattern bytes). The model is
//
//	period(depth) = Tlut · depth + Tnet0 + Knet · maxFanout^FanExp
//
// with per-device constants calibrated against two published points
// (Virtex-4 LX200 at 533 MHz / ~300 B and 316 MHz / ~3000 B; VirtexE
// scaled by the published 533/196 process ratio). Report.FrequencyMHz uses
// depth 1 — the paper's generator registers every gate ("one level of
// logic between pipelined registers"), whereas this package's functional
// netlist is deliberately not retimed; the mapped combinational depth is
// reported separately and drives the naive-encoder ablation via PeriodNs.
// EXPERIMENTS.md records paper-vs-model for every row.
package fpga

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cfgtag/internal/netlist"
)

// Device is an FPGA device model.
type Device struct {
	// Name as in table 1, e.g. "Virtex4 LX200".
	Name string
	// LUTInputs is the LUT fan-in (4 for both paper devices).
	LUTInputs int
	// TotalLUTs is the device capacity, for utilization reporting.
	TotalLUTs int
	// Tlut is the LUT logic delay plus register setup, in ns.
	Tlut float64
	// Tnet0 is the fanout-independent net delay, in ns.
	Tnet0 float64
	// Knet scales the fanout-dependent routing delay, in ns.
	Knet float64
	// FanExp is the routing-delay fanout exponent.
	FanExp float64
}

// The two devices of table 1. Calibration for Virtex-4: the generated
// XML-RPC design maps with a maximum decoded-wire fanout of ≈ 46 and must
// hit 533 MHz (period 1.876 ns); the ≈ 10× duplicated grammar maps with
// fanout ≈ 460 and must hit 316 MHz (period 3.165 ns). A power law with
// exponent 0.444 puts the fanout-routing term at 0.72 ns and 2.01 ns
// respectively — the latter matching the paper's "just under 2 ns" routing
// observation — leaving Tlut+Tnet0 ≈ 1.15 ns. VirtexE is the same fabric
// scaled by the published 533/196 speed ratio (≈ 2.72).
var (
	Virtex4LX200 = Device{
		Name:      "Virtex4 LX200",
		LUTInputs: 4,
		TotalLUTs: 178176,
		Tlut:      0.55,
		Tnet0:     0.602,
		Knet:      0.1323,
		FanExp:    0.444,
	}
	VirtexE2000 = Device{
		Name:      "VirtexE 2000",
		LUTInputs: 4,
		TotalLUTs: 38400,
		Tlut:      1.495,
		Tnet0:     1.637,
		Knet:      0.3597,
		FanExp:    0.444,
	}
)

// Report is one synthesis result — a row of table 1.
type Report struct {
	Device Device
	// LUTs is the mapped 4-input LUT count.
	LUTs int
	// Registers is the flip-flop count (free in slice terms: every LUT
	// site carries one, so they do not add area beyond LUTs).
	Registers int
	// PatternBytes is the grammar size metric (table 1 "# of Bytes").
	PatternBytes int
	// MaxFanout is the largest single-wire fanout after mapping; the
	// critical net per the paper's timing analysis.
	MaxFanout int
	// MaxFanoutLabel names that wire.
	MaxFanoutLabel string
	// LogicDepth is the longest register-to-register LUT chain in this
	// package's functional (un-retimed) netlist. The paper's generator
	// pipelines every gate, so FrequencyMHz assumes depth 1; the ablation
	// benches use PeriodNs(LogicDepth) to show what an unpipelined encoder
	// costs.
	LogicDepth int
	// FrequencyMHz is the modeled clock rate of the fully pipelined design.
	FrequencyMHz float64
	// Breakdown maps label groups (dec/, tok/, wire/, enc/, out/) to LUT
	// counts.
	Breakdown map[string]int
}

// BandwidthGbps is the paper's throughput metric: one byte per cycle.
func (r Report) BandwidthGbps() float64 { return r.FrequencyMHz * 8 / 1000 }

// LUTsPerByte is the paper's area-efficiency metric.
func (r Report) LUTsPerByte() float64 {
	if r.PatternBytes == 0 {
		return 0
	}
	return float64(r.LUTs) / float64(r.PatternBytes)
}

// Utilization is the fraction of the device consumed.
func (r Report) Utilization() float64 { return float64(r.LUTs) / float64(r.Device.TotalLUTs) }

// String renders the report as a table 1 row.
func (r Report) String() string {
	return fmt.Sprintf("%-14s %4.0f MHz  %.2f Gbps  %5d B  %6d LUTs  %.2f LUT/B  depth %d  fanout %d",
		r.Device.Name, r.FrequencyMHz, r.BandwidthGbps(), r.PatternBytes,
		r.LUTs, r.LUTsPerByte(), r.LogicDepth, r.MaxFanout)
}

// Synthesize maps the netlist onto the device and applies the timing
// model. patternBytes is the grammar-size metric carried into the report.
func Synthesize(n *netlist.Netlist, dev Device, patternBytes int) (Report, error) {
	if err := n.Validate(); err != nil {
		return Report{}, fmt.Errorf("fpga: %w", err)
	}
	if err := checkArity(n, dev.LUTInputs); err != nil {
		return Report{}, err
	}
	m := mapNetlist(n, dev.LUTInputs)
	rep := Report{
		Device:         dev,
		LUTs:           m.lutCount,
		Registers:      m.regCount,
		PatternBytes:   patternBytes,
		MaxFanout:      m.maxFanout,
		MaxFanoutLabel: m.maxFanoutLabel,
		LogicDepth:     m.maxDepth,
		Breakdown:      m.breakdown,
	}
	rep.FrequencyMHz = 1000 / rep.PeriodNs(1)
	return rep, nil
}

// PeriodNs evaluates the timing model at a given register-to-register LUT
// depth: depth 1 for the fully pipelined design, Report.LogicDepth for an
// un-retimed one.
func (r Report) PeriodNs(depth int) float64 {
	if depth < 1 {
		depth = 1
	}
	d := r.Device
	return d.Tlut*float64(depth) + d.Tnet0 + d.Knet*math.Pow(float64(r.MaxFanout), d.FanExp)
}

// FormatTable renders reports in the layout of table 1.
func FormatTable(reports []Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s %10s\n",
		"Device", "Freq(MHz)", "BW(Gbps)", "Bytes", "LUTs", "LUTs/Byte")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-14s %10.0f %10.2f %10d %10d %10.2f\n",
			r.Device.Name, r.FrequencyMHz, r.BandwidthGbps(), r.PatternBytes, r.LUTs, r.LUTsPerByte())
	}
	return b.String()
}

// BreakdownString renders the per-group LUT split, decoders first.
func (r Report) BreakdownString() string {
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-8s %6d LUTs\n", k, r.Breakdown[k])
	}
	return b.String()
}
