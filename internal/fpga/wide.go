package fpga

import "fmt"

// WideProjection models the section 5.2 future-work scaling: "improvements
// in speed can be gained by scaling the design to process 32-bits or
// 64-bits per clock cycle". The paper gives no measurements, so this is an
// analytical projection, documented rather than calibrated:
//
//   - every lane needs its own decoder column and the per-position
//     transition logic must compose k single-byte steps per cycle; a
//     parallel-prefix (doubling) composition costs ceil(log2 k) extra LUT
//     levels and ≈ k× the base area plus composition overhead,
//   - the decoded-wire fanout per lane is unchanged, so the routing term
//     of the timing model carries over,
//   - throughput multiplies by k bytes per cycle.
type WideProjection struct {
	Base Report
	// LanesBytes is the datapath width in bytes per cycle.
	LanesBytes int
	// LUTs is the projected area.
	LUTs int
	// FrequencyMHz is the projected clock after the extra pipeline levels.
	FrequencyMHz float64
}

// compositionDepth is the extra LUT levels per doubling of the datapath.
const compositionOverhead = 1.25 // area factor per composition stage

// ProjectWide scales a synthesized single-byte report to a k-byte datapath.
// k must be a power of two between 1 and 8 (the paper's 64-bit ceiling).
func ProjectWide(base Report, lanesBytes int) (WideProjection, error) {
	switch lanesBytes {
	case 1, 2, 4, 8:
	default:
		return WideProjection{}, fmt.Errorf("fpga: datapath width %d bytes unsupported (1, 2, 4 or 8)", lanesBytes)
	}
	p := WideProjection{Base: base, LanesBytes: lanesBytes}
	// Doublings: 1→0, 2→1, 4→2, 8→3.
	doublings := 0
	for 1<<doublings < lanesBytes {
		doublings++
	}
	area := float64(base.LUTs) * float64(lanesBytes)
	for i := 0; i < doublings; i++ {
		area *= compositionOverhead
	}
	p.LUTs = int(area)
	// Each doubling adds one LUT level of step composition between
	// registers; the routing term is unchanged.
	p.FrequencyMHz = 1000 / base.PeriodNs(1+doublings)
	return p, nil
}

// BandwidthGbps is the projected throughput.
func (p WideProjection) BandwidthGbps() float64 {
	return p.FrequencyMHz * 8 * float64(p.LanesBytes) / 1000
}

func (p WideProjection) String() string {
	return fmt.Sprintf("%d-byte datapath: %4.0f MHz, %5.2f Gbps, %6d LUTs",
		p.LanesBytes, p.FrequencyMHz, p.BandwidthGbps(), p.LUTs)
}
