package fpga

import (
	"strings"
	"testing"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/netlist"
	"cfgtag/internal/workload"
)

func design(t *testing.T, g *grammar.Grammar, hopts hwgen.Options) *hwgen.Design {
	t.Helper()
	s, err := core.Compile(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hwgen.Generate(s, hopts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func synth(t *testing.T, d *hwgen.Design, dev Device) Report {
	t.Helper()
	rep, err := Synthesize(d.Netlist, dev, d.Spec.PatternBytes())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCalibrationPoints pins the two published calibration rows: the
// XML-RPC design must synthesize at ≈ 533 MHz / 4.26 Gbps on Virtex-4 and
// ≈ 196 MHz / 1.57 Gbps on VirtexE (table 1, paper rows 1 and 6).
func TestCalibrationPoints(t *testing.T) {
	d := design(t, grammar.XMLRPC(), hwgen.Options{})
	v4 := synth(t, d, Virtex4LX200)
	if v4.FrequencyMHz < 510 || v4.FrequencyMHz > 555 {
		t.Errorf("Virtex-4 XML-RPC frequency = %.0f MHz, want ≈ 533", v4.FrequencyMHz)
	}
	if bw := v4.BandwidthGbps(); bw < 4.0 || bw > 4.5 {
		t.Errorf("Virtex-4 bandwidth = %.2f Gbps, want ≈ 4.26", bw)
	}
	ve := synth(t, d, VirtexE2000)
	if ve.FrequencyMHz < 185 || ve.FrequencyMHz > 210 {
		t.Errorf("VirtexE frequency = %.0f MHz, want ≈ 196", ve.FrequencyMHz)
	}
	if bw := ve.BandwidthGbps(); bw < 1.45 || bw > 1.70 {
		t.Errorf("VirtexE bandwidth = %.2f Gbps, want ≈ 1.57", bw)
	}
}

// TestFrequencyFallsWithGrammarSize reproduces the figure 15 shape: the
// clock degrades monotonically as pattern bytes grow, landing near the
// published 316 MHz at the ≈ 3000 byte point.
func TestFrequencyFallsWithGrammarSize(t *testing.T) {
	var prev float64 = 1e9
	for _, n := range []int{1, 2, 4, 7, 10} {
		g, err := workload.Scale(grammar.XMLRPC(), n)
		if err != nil {
			t.Fatal(err)
		}
		d := design(t, g, hwgen.Options{})
		rep := synth(t, d, Virtex4LX200)
		if rep.FrequencyMHz >= prev {
			t.Errorf("x%d: frequency %.0f did not fall below %.0f", n, rep.FrequencyMHz, prev)
		}
		prev = rep.FrequencyMHz
		if n == 10 {
			if rep.FrequencyMHz < 295 || rep.FrequencyMHz > 340 {
				t.Errorf("x10 frequency = %.0f MHz, want ≈ 316", rep.FrequencyMHz)
			}
		}
	}
}

// TestLUTsPerByteDeclines reproduces the paper's area observation: the
// decoders amortize, so LUTs/byte falls as the grammar grows, by roughly
// the published ratio (1.01 → 0.77, i.e. ≈ 0.76×).
func TestLUTsPerByteDeclines(t *testing.T) {
	small := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{}), Virtex4LX200)
	gBig, err := workload.Scale(grammar.XMLRPC(), 10)
	if err != nil {
		t.Fatal(err)
	}
	big := synth(t, design(t, gBig, hwgen.Options{}), Virtex4LX200)
	if big.LUTsPerByte() >= small.LUTsPerByte() {
		t.Fatalf("LUTs/byte did not decline: %.2f → %.2f", small.LUTsPerByte(), big.LUTsPerByte())
	}
	ratio := big.LUTsPerByte() / small.LUTsPerByte()
	if ratio < 0.65 || ratio > 0.9 {
		t.Errorf("LUTs/byte decline ratio = %.2f, paper shows ≈ 0.76", ratio)
	}
	// The decoder group must stay ~constant while everything else scales.
	if big.Breakdown["dec"] > small.Breakdown["dec"]*5/4 {
		t.Errorf("decoder LUTs should amortize: %d → %d", small.Breakdown["dec"], big.Breakdown["dec"])
	}
	if big.Breakdown["tok"] < small.Breakdown["tok"]*8 {
		t.Errorf("token chain LUTs should scale ~linearly: %d → %d", small.Breakdown["tok"], big.Breakdown["tok"])
	}
}

func TestCriticalNetIsDecodedCharacter(t *testing.T) {
	g, err := workload.Scale(grammar.XMLRPC(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := synth(t, design(t, g, hwgen.Options{}), Virtex4LX200)
	if !strings.HasPrefix(rep.MaxFanoutLabel, "dec/") {
		t.Errorf("critical net = %q (fanout %d), want a decoder wire", rep.MaxFanoutLabel, rep.MaxFanout)
	}
	// Routing delay at the ≈ 10× point should be around the published
	// "just under 2 ns".
	g10, err := workload.Scale(grammar.XMLRPC(), 10)
	if err != nil {
		t.Fatal(err)
	}
	rep10 := synth(t, design(t, g10, hwgen.Options{}), Virtex4LX200)
	routing := rep10.PeriodNs(1) - Virtex4LX200.Tlut - Virtex4LX200.Tnet0
	if routing < 1.7 || routing > 2.2 {
		t.Errorf("routing delay at 10× = %.2f ns, want ≈ 2", routing)
	}
}

func TestNaiveEncoderDepth(t *testing.T) {
	tree := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{}), Virtex4LX200)
	naive := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{NaiveEncoder: true}), Virtex4LX200)
	if naive.LogicDepth <= 2*tree.LogicDepth {
		t.Errorf("naive encoder depth %d should dwarf tree depth %d", naive.LogicDepth, tree.LogicDepth)
	}
	// An unpipelined naive encoder at its real depth is far slower than
	// the pipelined design.
	fNaive := 1000 / naive.PeriodNs(naive.LogicDepth)
	if fNaive > tree.FrequencyMHz/3 {
		t.Errorf("naive encoder at depth %d models %.0f MHz, expected < a third of %.0f",
			naive.LogicDepth, fNaive, tree.FrequencyMHz)
	}
}

func TestDecoderSharingAblation(t *testing.T) {
	shared := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{}), Virtex4LX200)
	private := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{NoDecoderSharing: true}), Virtex4LX200)
	if private.LUTs <= shared.LUTs {
		t.Errorf("private decoders should cost more: %d vs %d LUTs", private.LUTs, shared.LUTs)
	}
}

func TestMapperSmallCircuits(t *testing.T) {
	// A single 2-input AND feeding a register: exactly one LUT.
	n := netlist.New()
	a, b := n.Input("a"), n.Input("b")
	r := n.Reg(n.And(a, b), "r")
	n.Output("q", r)
	rep, err := Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 1 || rep.Registers != 1 || rep.LogicDepth != 1 {
		t.Errorf("AND+reg: %+v", rep)
	}

	// A 2-level tree that fits one LUT cone: Or(And(a,b), c) = 3 inputs.
	n = netlist.New()
	a, b = n.Input("a"), n.Input("b")
	c := n.Input("c")
	r = n.Reg(n.Or(n.And(a, b), c), "r")
	n.Output("q", r)
	rep, err = Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 1 {
		t.Errorf("3-input cone should be 1 LUT, got %d", rep.LUTs)
	}

	// Five inputs cannot fit one 4-LUT: Or(And(a,b,c,d), e) → 2 LUTs.
	n = netlist.New()
	var ins []netlist.Wire
	for _, name := range []string{"a", "b", "c", "d"} {
		ins = append(ins, n.Input(name))
	}
	e := n.Input("e")
	r = n.Reg(n.Or(n.And(ins...), e), "r")
	n.Output("q", r)
	rep, err = Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 2 || rep.LogicDepth != 2 {
		t.Errorf("5-input cone: LUTs=%d depth=%d, want 2 and 2", rep.LUTs, rep.LogicDepth)
	}
}

func TestMapperInverterAbsorption(t *testing.T) {
	// NOT gates are free: And(a, Not(b)) is one LUT.
	n := netlist.New()
	a, b := n.Input("a"), n.Input("b")
	r := n.Reg(n.And(a, n.Not(b)), "r")
	n.Output("q", r)
	rep, err := Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 1 {
		t.Errorf("inverter not absorbed: %d LUTs", rep.LUTs)
	}
	// A shared inverter is duplicated rather than becoming its own LUT.
	n = netlist.New()
	a, b = n.Input("a"), n.Input("b")
	nb := n.Not(b)
	n.Output("q1", n.Reg(n.And(a, nb), "r1"))
	n.Output("q2", n.Reg(n.Or(a, nb), "r2"))
	rep, err = Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 2 {
		t.Errorf("shared inverter: %d LUTs, want 2", rep.LUTs)
	}
}

func TestMapperSharedGateIsRoot(t *testing.T) {
	// A shared AND feeds two consumers: 3 LUTs total (itself + 2), and its
	// net fanout is 2.
	n := netlist.New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	d := n.Input("d")
	shared := n.And(a, b)
	n.Gates[shared].Label = "shared/x"
	n.Output("q1", n.Reg(n.Or(shared, c), "r1"))
	n.Output("q2", n.Reg(n.And(shared, c), "r2"))
	n.Output("q3", n.Reg(n.Or(shared, d), "r3"))
	rep, err := Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 4 {
		t.Errorf("shared cone: %d LUTs, want 4", rep.LUTs)
	}
	if rep.MaxFanout != 3 || rep.MaxFanoutLabel != "shared/x" {
		t.Errorf("fanout = %d (%s), want 3 (shared/x)", rep.MaxFanout, rep.MaxFanoutLabel)
	}
	if rep.LogicDepth != 2 {
		t.Errorf("depth = %d, want 2", rep.LogicDepth)
	}
}

func TestMapperWideOrTree(t *testing.T) {
	// 16 inputs through an arity-4 OR tree: 4 + 1 = 5 LUTs, depth 2.
	n := netlist.New()
	var level []netlist.Wire
	for i := 0; i < 4; i++ {
		var ins []netlist.Wire
		for j := 0; j < 4; j++ {
			ins = append(ins, n.Input(string(rune('a'+i*4+j))))
		}
		level = append(level, n.Or(ins...))
	}
	n.Output("q", n.Reg(n.Or(level...), "r"))
	rep, err := Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 5 || rep.LogicDepth != 2 {
		t.Errorf("16-wide OR: LUTs=%d depth=%d, want 5 and 2", rep.LUTs, rep.LogicDepth)
	}
}

func TestArityGuard(t *testing.T) {
	n := netlist.New()
	var ins []netlist.Wire
	for i := 0; i < 6; i++ {
		ins = append(ins, n.Input(string(rune('a'+i))))
	}
	n.Output("q", n.Reg(n.And(ins...), "r"))
	if _, err := Synthesize(n, Virtex4LX200, 1); err == nil {
		t.Error("6-input gate should be rejected by the 4-LUT mapper")
	}
}

func TestUtilizationAndFormatting(t *testing.T) {
	d := design(t, grammar.XMLRPC(), hwgen.Options{})
	rep := synth(t, d, VirtexE2000)
	if u := rep.Utilization(); u <= 0 || u >= 1 {
		t.Errorf("utilization = %f", u)
	}
	table := FormatTable([]Report{rep})
	if !strings.Contains(table, "VirtexE 2000") || !strings.Contains(table, "LUTs/Byte") {
		t.Errorf("table:\n%s", table)
	}
	if s := rep.String(); !strings.Contains(s, "MHz") {
		t.Errorf("String() = %q", s)
	}
	if bd := rep.BreakdownString(); !strings.Contains(bd, "dec") {
		t.Errorf("breakdown:\n%s", bd)
	}
}

// TestBreakdownSumsToTotal: every mapped LUT is attributed to exactly one
// label group.
func TestBreakdownSumsToTotal(t *testing.T) {
	for _, scale := range []int{1, 3} {
		g, err := workload.Scale(grammar.XMLRPC(), scale)
		if err != nil {
			t.Fatal(err)
		}
		rep := synth(t, design(t, g, hwgen.Options{}), Virtex4LX200)
		sum := 0
		for _, v := range rep.Breakdown {
			sum += v
		}
		if sum != rep.LUTs {
			t.Errorf("x%d: breakdown sums to %d, total %d (%v)", scale, sum, rep.LUTs, rep.Breakdown)
		}
		if rep.Breakdown["other"] != 0 {
			t.Errorf("x%d: %d unattributed LUTs", scale, rep.Breakdown["other"])
		}
	}
}

// TestMapperBounds: the LUT count is sandwiched by obvious bounds — at
// most one LUT per combinational gate, at least gates/…; and depth ≥ 1.
func TestMapperBounds(t *testing.T) {
	d := design(t, grammar.XMLRPC(), hwgen.Options{})
	rep := synth(t, d, Virtex4LX200)
	stats := d.Netlist.ComputeStats()
	comb := stats.And + stats.Or + stats.Not
	if rep.LUTs > comb {
		t.Errorf("LUTs %d exceed combinational gates %d", rep.LUTs, comb)
	}
	if rep.LUTs < comb/8 {
		t.Errorf("LUTs %d implausibly small for %d gates", rep.LUTs, comb)
	}
	if rep.LogicDepth < 1 || rep.Registers != stats.Reg {
		t.Errorf("depth=%d regs=%d/%d", rep.LogicDepth, rep.Registers, stats.Reg)
	}
}

func TestProjectWide(t *testing.T) {
	base := synth(t, design(t, grammar.XMLRPC(), hwgen.Options{}), Virtex4LX200)
	var prev float64
	for _, k := range []int{1, 2, 4, 8} {
		p, err := ProjectWide(base, k)
		if err != nil {
			t.Fatal(err)
		}
		if p.BandwidthGbps() <= prev {
			t.Errorf("%d-byte datapath bandwidth %.2f did not improve on %.2f", k, p.BandwidthGbps(), prev)
		}
		prev = p.BandwidthGbps()
		if k == 1 {
			if p.LUTs != base.LUTs || p.FrequencyMHz != base.FrequencyMHz {
				t.Errorf("1-byte projection must equal the base: %+v", p)
			}
		} else {
			if p.LUTs <= base.LUTs*k/2 {
				t.Errorf("%d-byte area %d implausibly small", k, p.LUTs)
			}
			if p.FrequencyMHz >= base.FrequencyMHz {
				t.Errorf("%d-byte clock %f should drop below the base %f", k, p.FrequencyMHz, base.FrequencyMHz)
			}
		}
	}
	// The paper's 64-bit target: ≥ 4× the single-byte bandwidth.
	p8, _ := ProjectWide(base, 8)
	if p8.BandwidthGbps() < 4*base.BandwidthGbps() {
		t.Errorf("8-byte projection %.2f Gbps < 4× base %.2f", p8.BandwidthGbps(), base.BandwidthGbps())
	}
	if _, err := ProjectWide(base, 3); err == nil {
		t.Error("non-power-of-two width accepted")
	}
}

func TestRegistersDoNotCountAsLUTs(t *testing.T) {
	// A pure shift register consumes no LUTs.
	n := netlist.New()
	d := n.Input("d")
	r1 := n.Reg(d, "r1")
	r2 := n.Reg(r1, "r2")
	n.Output("q", r2)
	rep, err := Synthesize(n, Virtex4LX200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTs != 0 || rep.Registers != 2 {
		t.Errorf("shift register: LUTs=%d regs=%d", rep.LUTs, rep.Registers)
	}
}
