package cfgtag

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cfgtag/internal/aot"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
)

// ErrInvalidConfig is the sentinel wrapped by every configuration
// rejection — PlatformConfig.Validate, PipelineConfig negatives, tenant
// quotas. Test with errors.Is.
var ErrInvalidConfig = runtime.ErrInvalidConfig

// ConfigError names the invalid field behind an ErrInvalidConfig.
type ConfigError = runtime.ConfigError

// ErrUnknownTenant is returned by Platform operations naming a tenant not
// in the config. Test with errors.Is.
var ErrUnknownTenant = runtime.ErrUnknownTenant

// ErrQuotaExceeded is returned by Platform.Send when the chunk would
// violate the tenant's quota (MaxStreams or BytesPerSec); nothing is
// enqueued. Test with errors.Is.
var ErrQuotaExceeded = runtime.ErrQuotaExceeded

// ErrPlatformClosed is returned by every Platform operation — including
// a second Close — once the platform has been closed. Close is
// idempotent and safe to race: exactly one caller performs the shutdown,
// the rest observe this error. Test with errors.Is.
var ErrPlatformClosed = errors.New("cfgtag: platform closed")

// Duration is a time.Duration that unmarshals from JSON as either a
// number of nanoseconds or a Go duration string ("30s", "1ms", "-1ns").
type Duration time.Duration

// UnmarshalJSON accepts 5000000, "5ms", etc.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// QuotaConfig bounds one tenant's resource consumption; zero values are
// unlimited.
type QuotaConfig struct {
	// MaxStreams caps the tenant's concurrently live streams. Unlike the
	// per-shard MaxStreams knob (which evicts), the quota rejects the new
	// stream at Send with ErrQuotaExceeded.
	MaxStreams int `json:"max_streams,omitempty"`
	// BytesPerSec caps the tenant's sustained Send rate with a one-second
	// burst; Sends beyond it fail with ErrQuotaExceeded.
	BytesPerSec int64 `json:"bytes_per_sec,omitempty"`
	// MemBudgetBytes caps the tenant's estimated live memory — dispatch
	// arenas, stream buffers, DFA cache, Earley charts — rejecting Sends
	// with ErrResourceExhausted while the gauge is at or over budget.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// LimitsConfig bounds each stream's backend resources declaratively; see
// StreamLimits for semantics. Zero values are unlimited.
type LimitsConfig struct {
	MaxBufferBytes    int `json:"max_buffer_bytes,omitempty"`
	MaxPendingMatches int `json:"max_pending_matches,omitempty"`
	MaxChartItems     int `json:"max_chart_items,omitempty"`
	MaxWorkPerByte    int `json:"max_work_per_byte,omitempty"`
}

// TenantDef declares one tenant in a PlatformConfig: a name, a grammar
// (inline source or a file path), compile options, the execution backend
// and the pipeline/quota knobs. Zero values select the defaults
// documented on PipelineConfig.
type TenantDef struct {
	// Name identifies the tenant; required, unique within the config.
	Name string `json:"name"`
	// Grammar is the inline Lex/Yacc-style grammar source. Exactly one of
	// Grammar and GrammarFile must be set.
	Grammar string `json:"grammar,omitempty"`
	// GrammarFile is a path to the grammar source, read at Platform
	// construction (and at each SIGHUP-style reload from file).
	GrammarFile string `json:"grammar_file,omitempty"`
	// Options are compile options by name: "free-running-start",
	// "no-context-duplication", "no-longest-match", "all-enabled",
	// "recover-restart", "recover-resync".
	Options []string `json:"options,omitempty"`
	// Backend selects the execution path: "stream" (default), "dfa",
	// "aot", "gates", "parser" or "earley". The aot path determinizes
	// the grammar to closure at tenant construction (and at each Reload)
	// — compile once per version, amortized over every stream — and
	// fails construction when the grammar does not close within the
	// default state budget.
	Backend string `json:"backend,omitempty"`
	// Shards is the tenant's pipeline width (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Queue is each shard's input queue depth in batches (0 = 64).
	Queue int `json:"queue,omitempty"`
	// MaxStreams caps live streams per shard with LRU eviction (0 =
	// unlimited); see also Quota.MaxStreams for the rejecting cap.
	MaxStreams int `json:"max_streams,omitempty"`
	// Quarantine is the faulted-stream rejection TTL ("30s"; negative
	// disables, zero selects the default).
	Quarantine Duration `json:"quarantine,omitempty"`
	// BatchBytes is the dispatch-coalescing target (0 = 64 KiB, negative
	// disables coalescing).
	BatchBytes int `json:"batch_bytes,omitempty"`
	// SinkAttempts, SinkBackoff and SinkWorkers tune delivery (see
	// PipelineConfig).
	SinkAttempts int      `json:"sink_attempts,omitempty"`
	SinkBackoff  Duration `json:"sink_backoff,omitempty"`
	SinkWorkers  int      `json:"sink_workers,omitempty"`
	// SendTimeout switches the tenant's Sends from backpressure to load
	// shedding with ErrOverloaded (see PipelineConfig.SendTimeout:
	// 0 = block, "-1ns" = shed immediately, positive = bounded wait).
	SendTimeout Duration `json:"send_timeout,omitempty"`
	// ShedHighWater is the queue depth where shed mode engages (0 = full
	// queue capacity).
	ShedHighWater int `json:"shed_high_water,omitempty"`
	// FeedDeadline arms the backend watchdog (see
	// PipelineConfig.FeedDeadline; 0 = disabled).
	FeedDeadline Duration `json:"feed_deadline,omitempty"`
	// Limits bounds each stream's backend resources (see LimitsConfig).
	Limits LimitsConfig `json:"limits,omitempty"`
	// Quota bounds the tenant's admission (see QuotaConfig).
	Quota QuotaConfig `json:"quota,omitempty"`
}

// PlatformConfig is the declarative multi-tenant configuration: one
// isolated pipeline per tenant, each with its own grammar, backend and
// governance knobs.
type PlatformConfig struct {
	Tenants []TenantDef `json:"tenants"`

	// WrapFactory, when set, wraps every tenant's backend factory —
	// including the factories published by later Reloads — before it is
	// installed. It is the seam fault-injection and instrumentation
	// harnesses use to sit between the pipeline and the real backends;
	// it is code, not configuration, and never round-trips through JSON.
	WrapFactory func(runtime.Factory) runtime.Factory `json:"-"`
}

// optionByName maps the declarative option names to compile Options.
var optionByName = map[string]Option{
	"free-running-start":     FreeRunningStart(),
	"no-context-duplication": WithoutContextDuplication(),
	"no-longest-match":       WithoutLongestMatch(),
	"all-enabled":            AllEnabled(),
	"recover-restart":        RecoverRestart(),
	"recover-resync":         RecoverResync(),
}

// backendKinds is the set of declarative backend names.
var backendKinds = map[string]BackendKind{
	"":       StreamBackend,
	"stream": StreamBackend,
	"dfa":    DFABackend,
	"aot":    AOTBackend,
	"gates":  GatesBackend,
	"parser": ParserBackend,
	"earley": EarleyBackend,
}

// ParsePlatformConfig decodes a JSON platform configuration strictly:
// unknown fields are errors, so a typo'd knob cannot silently no-op. The
// result is structurally decoded but not yet validated; call Validate (or
// let NewPlatform do both).
func ParsePlatformConfig(data []byte) (*PlatformConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pc PlatformConfig
	if err := dec.Decode(&pc); err != nil {
		return nil, fmt.Errorf("cfgtag: platform config: %w", err)
	}
	// Trailing garbage after the config object is an error too.
	if dec.More() {
		return nil, fmt.Errorf("cfgtag: platform config: trailing data after config object")
	}
	return &pc, nil
}

// Validate checks the config's semantics: at least one tenant, unique
// non-empty names, exactly one grammar source each, known options and
// backends, and no undocumented negative knobs. Grammar sources are not
// compiled here (that happens in NewPlatform); every rejection wraps
// ErrInvalidConfig.
func (pc *PlatformConfig) Validate() error {
	if len(pc.Tenants) == 0 {
		return &ConfigError{Field: "tenants", Value: 0, Reason: "at least one tenant is required"}
	}
	seen := make(map[string]bool, len(pc.Tenants))
	for i := range pc.Tenants {
		t := &pc.Tenants[i]
		field := func(name string) string { return fmt.Sprintf("tenants[%d].%s", i, name) }
		if t.Name == "" {
			return &ConfigError{Field: field("name"), Value: t.Name, Reason: "tenant name is required"}
		}
		if seen[t.Name] {
			return &ConfigError{Field: field("name"), Value: t.Name, Reason: "duplicate tenant name"}
		}
		seen[t.Name] = true
		if (t.Grammar == "") == (t.GrammarFile == "") {
			return &ConfigError{Field: field("grammar"), Value: t.Grammar,
				Reason: "exactly one of grammar and grammar_file is required"}
		}
		for _, o := range t.Options {
			if _, ok := optionByName[o]; !ok {
				return &ConfigError{Field: field("options"), Value: o, Reason: "unknown compile option"}
			}
		}
		if _, ok := backendKinds[t.Backend]; !ok {
			return &ConfigError{Field: field("backend"), Value: t.Backend, Reason: "unknown backend kind"}
		}
		if t.Shards < 0 {
			return &ConfigError{Field: field("shards"), Value: t.Shards, Reason: "must be >= 0 (0 = GOMAXPROCS)"}
		}
		if t.Queue < 0 {
			return &ConfigError{Field: field("queue"), Value: t.Queue, Reason: "must be >= 0 (0 = default)"}
		}
		if t.MaxStreams < 0 {
			return &ConfigError{Field: field("max_streams"), Value: t.MaxStreams, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.SinkAttempts < 0 {
			return &ConfigError{Field: field("sink_attempts"), Value: t.SinkAttempts, Reason: "must be >= 0 (0 = default)"}
		}
		if t.SinkBackoff < 0 {
			return &ConfigError{Field: field("sink_backoff"), Value: t.SinkBackoff, Reason: "must be >= 0 (0 = default)"}
		}
		if t.SinkWorkers < 0 {
			return &ConfigError{Field: field("sink_workers"), Value: t.SinkWorkers, Reason: "must be >= 0 (0 = single worker)"}
		}
		// send_timeout: every value is meaningful (0 = block, negative =
		// shed immediately, positive = bounded wait), nothing to reject.
		if t.ShedHighWater < 0 {
			return &ConfigError{Field: field("shed_high_water"), Value: t.ShedHighWater, Reason: "must be >= 0 (0 = full queue capacity)"}
		}
		if t.FeedDeadline < 0 {
			return &ConfigError{Field: field("feed_deadline"), Value: t.FeedDeadline, Reason: "must be >= 0 (0 = watchdog disabled)"}
		}
		if t.Limits.MaxBufferBytes < 0 {
			return &ConfigError{Field: field("limits.max_buffer_bytes"), Value: t.Limits.MaxBufferBytes, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Limits.MaxPendingMatches < 0 {
			return &ConfigError{Field: field("limits.max_pending_matches"), Value: t.Limits.MaxPendingMatches, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Limits.MaxChartItems < 0 {
			return &ConfigError{Field: field("limits.max_chart_items"), Value: t.Limits.MaxChartItems, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Limits.MaxWorkPerByte < 0 {
			return &ConfigError{Field: field("limits.max_work_per_byte"), Value: t.Limits.MaxWorkPerByte, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Quota.MaxStreams < 0 {
			return &ConfigError{Field: field("quota.max_streams"), Value: t.Quota.MaxStreams, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Quota.BytesPerSec < 0 {
			return &ConfigError{Field: field("quota.bytes_per_sec"), Value: t.Quota.BytesPerSec, Reason: "must be >= 0 (0 = unlimited)"}
		}
		if t.Quota.MemBudgetBytes < 0 {
			return &ConfigError{Field: field("quota.mem_budget_bytes"), Value: t.Quota.MemBudgetBytes, Reason: "must be >= 0 (0 = unlimited)"}
		}
	}
	return nil
}

// options resolves the tenant's named compile options.
func (t *TenantDef) options() []Option {
	opts := make([]Option, 0, len(t.Options))
	for _, name := range t.Options {
		opts = append(opts, optionByName[name])
	}
	return opts
}

// grammarSource returns the tenant's grammar text, reading GrammarFile
// when the source is file-based.
func (t *TenantDef) grammarSource() (string, error) {
	if t.Grammar != "" {
		return t.Grammar, nil
	}
	b, err := os.ReadFile(t.GrammarFile)
	if err != nil {
		return "", fmt.Errorf("cfgtag: tenant %q: %w", t.Name, err)
	}
	return string(b), nil
}

// platformTenant is one tenant's decode state: the engine of every live
// factory version (batches carry their version, so a batch tagged by the
// old grammar decodes with the old engine throughout a reload), the
// tenant's declarative definition, and the reload serialization lock.
type platformTenant struct {
	def  TenantDef
	kind BackendKind
	lim  StreamLimits // resolved limits, shared by every factory version

	reloadMu sync.Mutex // serializes Reload per tenant

	mu       sync.RWMutex
	engines  map[int]*Engine
	releases map[int]func() // per-version memory-gauge discharge, if any
	pending  *Engine        // compiled but not yet bound to a version id
	current  *Engine        // the newest engine (Reload target)
}

// limits resolves the declarative limits plus the tenant's memory gauge.
func (t *TenantDef) limits(mem *MemGauge) StreamLimits {
	return StreamLimits{
		MaxBufferBytes:    t.Limits.MaxBufferBytes,
		MaxPendingMatches: t.Limits.MaxPendingMatches,
		MaxChartItems:     t.Limits.MaxChartItems,
		MaxWorkPerByte:    t.Limits.MaxWorkPerByte,
		Mem:               mem,
	}
}

// buildFactory builds one factory version with the tenant's limits. The
// dfa path charges its shared transition cache to the memory gauge for
// the version's lifetime; the aot path determinizes the grammar here —
// once per version, so Reload amortizes the compile fleet-wide — and
// charges its flattened tables the same way. The returned release
// discharges that charge when the version retires (nil when there is
// nothing to release), so zero-downtime reloads do not accrete gauge
// drift.
func buildFactory(engine *Engine, kind BackendKind, lim StreamLimits) (runtime.Factory, func(), error) {
	if kind == DFABackend && lim.Mem != nil {
		var charged atomic.Int64
		mem := lim.Mem
		cfg := stream.DFAConfig{MemDelta: func(d int64) { charged.Add(d); mem.Add(d) }}
		f := runtime.DFAFactoryLimits(engine.spec, cfg, lim)
		return f, func() { mem.Add(-charged.Swap(0)) }, nil
	}
	if kind == AOTBackend {
		prog, err := aot.Compile(engine.spec, aot.Config{})
		if err != nil {
			return nil, nil, err
		}
		var release func()
		if lim.Mem != nil {
			mem := lim.Mem
			bytes := int64(prog.Stats().TableBytes)
			mem.Add(bytes)
			release = func() { mem.Add(-bytes) }
		}
		return runtime.AOTProgramFactory(prog, lim), release, nil
	}
	f, err := engine.factoryLimits(kind, lim)
	return f, nil, err
}

// engineFor resolves the engine for a batch's factory version. A version
// published by an in-flight Reload may deliver its first batch before
// Reload learns the version id; the pending engine covers that window.
func (pt *platformTenant) engineFor(ver int) *Engine {
	pt.mu.RLock()
	e := pt.engines[ver]
	pending := pt.pending
	cur := pt.current
	pt.mu.RUnlock()
	if e != nil {
		return e
	}
	if pending != nil {
		pt.mu.Lock()
		pt.engines[ver] = pending
		pt.mu.Unlock()
		return pending
	}
	return cur
}

// dropVersion forgets a retired version's engine and discharges its
// memory-gauge charge — the resource-cleanup counterpart of the runtime's
// version retirement.
func (pt *platformTenant) dropVersion(ver int) {
	pt.mu.Lock()
	delete(pt.engines, ver)
	release := pt.releases[ver]
	delete(pt.releases, ver)
	pt.mu.Unlock()
	if release != nil {
		release()
	}
}

// Platform is the config-driven multi-tenant runtime: one isolated
// pipeline per tenant, declarative construction from a PlatformConfig,
// zero-downtime grammar reloads, and per-tenant metrics and quotas. All
// methods are safe for concurrent use.
type Platform struct {
	reg  *runtime.Registry
	wrap func(runtime.Factory) runtime.Factory

	mu      sync.RWMutex
	closed  bool
	tenants map[string]*platformTenant
}

// NewPlatform validates cfg, compiles every tenant's grammar and starts
// the per-tenant pipelines. deliver receives every tag batch with the
// originating tenant's name; like Pipeline's deliver, it must not retain
// b.Data or b.Tags past the call, and per-stream batches arrive in order.
func NewPlatform(cfg *PlatformConfig, deliver func(tenant string, b *TagBatch) error) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("cfgtag: NewPlatform: deliver is required")
	}
	p := &Platform{reg: runtime.NewRegistry(), wrap: cfg.WrapFactory, tenants: make(map[string]*platformTenant)}
	for i := range cfg.Tenants {
		def := cfg.Tenants[i]
		if err := p.addTenant(def, deliver); err != nil {
			p.reg.Close()
			return nil, err
		}
	}
	return p, nil
}

func (p *Platform) addTenant(def TenantDef, deliver func(string, *TagBatch) error) error {
	src, err := def.grammarSource()
	if err != nil {
		return err
	}
	engine, err := Compile(def.Name, src, def.options()...)
	if err != nil {
		return fmt.Errorf("cfgtag: tenant %q: %w", def.Name, err)
	}
	kind := backendKinds[def.Backend]
	// One gauge per tenant, shared by the factory (stream buffers, DFA
	// cache, charts), the pipeline (arenas) and the quota check at Send.
	var mem *MemGauge
	if def.Quota.MemBudgetBytes > 0 {
		mem = &MemGauge{}
	}
	lim := def.limits(mem)
	factory, release, err := buildFactory(engine, kind, lim)
	if err != nil {
		return fmt.Errorf("cfgtag: tenant %q: %w", def.Name, err)
	}
	if p.wrap != nil {
		factory = p.wrap(factory)
	}
	pt := &platformTenant{
		def:      def,
		kind:     kind,
		lim:      lim,
		engines:  map[int]*Engine{1: engine},
		releases: map[int]func(){1: release},
		current:  engine,
	}
	name := def.Name
	sink := runtime.SinkFunc(func(b *runtime.Batch) error {
		return deliver(name, pt.engineFor(b.Version).toTagBatch(b))
	})
	tenant := runtime.Tenant{
		Name: name,
		Config: runtime.Config{
			Shards:        def.Shards,
			Queue:         def.Queue,
			Factory:       factory,
			MaxStreams:    def.MaxStreams,
			Quarantine:    time.Duration(def.Quarantine),
			BatchBytes:    def.BatchBytes,
			SinkAttempts:  def.SinkAttempts,
			SinkBackoff:   time.Duration(def.SinkBackoff),
			SinkWorkers:   def.SinkWorkers,
			SendTimeout:   time.Duration(def.SendTimeout),
			ShedHighWater: def.ShedHighWater,
			FeedDeadline:  time.Duration(def.FeedDeadline),
			Mem:           mem,
			Hooks:         &runtime.Hooks{VersionRetired: pt.dropVersion},
		},
		Quota: runtime.Quota{
			MaxStreams:     def.Quota.MaxStreams,
			BytesPerSec:    def.Quota.BytesPerSec,
			MemBudgetBytes: def.Quota.MemBudgetBytes,
		},
	}
	if err := p.reg.Add(tenant, sink); err != nil {
		if release != nil {
			release()
		}
		return err
	}
	p.mu.Lock()
	p.tenants[name] = pt
	p.mu.Unlock()
	return nil
}

func (p *Platform) tenant(name string) (*platformTenant, error) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrPlatformClosed
	}
	pt, ok := p.tenants[name]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return pt, nil
}

// isClosed reports whether Close has begun.
func (p *Platform) isClosed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// Send routes one chunk of the keyed stream to the tenant's pipeline,
// enforcing the tenant's quotas (ErrQuotaExceeded) before anything is
// enqueued. After Close it fails with ErrPlatformClosed.
func (p *Platform) Send(tenant, stream string, data []byte) error {
	if p.isClosed() {
		return ErrPlatformClosed
	}
	return p.reg.Send(tenant, stream, data)
}

// CloseStream ends one stream of the tenant; its final batch is delivered
// with EOS set. After Close it fails with ErrPlatformClosed.
func (p *Platform) CloseStream(tenant, stream string) error {
	if p.isClosed() {
		return ErrPlatformClosed
	}
	return p.reg.CloseStream(tenant, stream)
}

// Reload compiles grammarSrc with the tenant's configured options and
// backend and publishes it as a new factory version — a zero-downtime
// grammar swap. Streams already live keep their old grammar (their
// batches keep decoding with the old engine, stamped with the old
// Version); streams that start after Reload returns run the new grammar.
// The old version's resources are torn down when its last stream's final
// batch has been delivered. Returns the new version id.
func (p *Platform) Reload(tenant, grammarSrc string) (int, error) {
	pt, err := p.tenant(tenant)
	if err != nil {
		return 0, err
	}
	pt.reloadMu.Lock()
	defer pt.reloadMu.Unlock()
	engine, err := Compile(tenant, grammarSrc, pt.def.options()...)
	if err != nil {
		return 0, fmt.Errorf("cfgtag: tenant %q: %w", tenant, err)
	}
	factory, release, err := buildFactory(engine, pt.kind, pt.lim)
	if err != nil {
		return 0, fmt.Errorf("cfgtag: tenant %q: %w", tenant, err)
	}
	if p.wrap != nil {
		factory = p.wrap(factory)
	}
	// Publish the engine before the factory: the new version's first
	// batch may reach the sink before Swap returns its id.
	pt.mu.Lock()
	pt.pending = engine
	pt.mu.Unlock()
	v, err := p.reg.Swap(tenant, factory)
	pt.mu.Lock()
	if err == nil {
		pt.engines[v] = engine
		pt.releases[v] = release
		pt.current = engine
	}
	pt.pending = nil
	pt.mu.Unlock()
	if err != nil {
		if release != nil {
			release()
		}
		return 0, err
	}
	return v, nil
}

// ReloadFromFile re-reads the tenant's grammar_file and Reloads from it;
// it fails for tenants declared with inline grammar source.
func (p *Platform) ReloadFromFile(tenant string) (int, error) {
	pt, err := p.tenant(tenant)
	if err != nil {
		return 0, err
	}
	if pt.def.GrammarFile == "" {
		return 0, fmt.Errorf("cfgtag: tenant %q has no grammar_file to reload from", tenant)
	}
	b, err := os.ReadFile(pt.def.GrammarFile)
	if err != nil {
		return 0, fmt.Errorf("cfgtag: tenant %q: %w", tenant, err)
	}
	return p.Reload(tenant, string(b))
}

// Tenants reports the tenant names in sorted order.
func (p *Platform) Tenants() []string { return p.reg.Tenants() }

// Metrics reports the tenant's observability totals and its queue-depth
// high-water mark.
func (p *Platform) Metrics(tenant string) (BackendCounters, int, error) {
	return p.reg.Counters(tenant)
}

// Faults reports the tenant's fault-tolerance totals.
func (p *Platform) Faults(tenant string) (FaultStats, error) {
	return p.reg.Faults(tenant)
}

// CompileStats reports the tenant's most recent AOT synthesis report —
// states, byte classes, table bytes and compile duration of the current
// program, rewritten on each Reload. Zero for tenants on other backends
// (they compile nothing ahead of time) and for aot tenants that have not
// minted a stream yet.
func (p *Platform) CompileStats(tenant string) (CompileStats, error) {
	return p.reg.CompileStats(tenant)
}

// LiveStreams reports the tenant's admitted live-stream count (tracked
// only when the tenant has a MaxStreams quota).
func (p *Platform) LiveStreams(tenant string) (int, error) {
	return p.reg.LiveStreams(tenant)
}

// MemUsage reports the tenant's estimated live bytes — the gauge the
// mem_budget_bytes quota reads. Always zero for tenants without a memory
// budget (no gauge is installed).
func (p *Platform) MemUsage(tenant string) (int64, error) {
	return p.reg.MemUsage(tenant)
}

// CurrentVersion reports the factory version new streams of the tenant
// bind (1 until the first Reload).
func (p *Platform) CurrentVersion(tenant string) (int, error) {
	pl, err := p.reg.Pipeline(tenant)
	if err != nil {
		return 0, err
	}
	return pl.CurrentVersion(), nil
}

// LiveVersions reports the tenant's not-yet-retired factory versions in
// ascending order; length 1 means no old version is still draining.
func (p *Platform) LiveVersions(tenant string) ([]int, error) {
	pl, err := p.reg.Pipeline(tenant)
	if err != nil {
		return nil, err
	}
	return pl.LiveVersions(), nil
}

// Close shuts every tenant pipeline down — flushing open streams and
// delivering their EOS batches — and returns the first error. Close is
// idempotent: exactly one caller (even under a race) performs the
// shutdown; every later or losing call returns ErrPlatformClosed without
// touching the pipelines.
func (p *Platform) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPlatformClosed
	}
	p.closed = true
	p.mu.Unlock()
	return p.reg.Close()
}
