// Network-path throughput benchmark: the CFGTAG/1 TCP front door over
// the multi-tenant platform, end to end — framing, session registry,
// sharded pipeline, tag write-back — measured in payload MB/s. Lives in
// package cfgtag_test because the serve layer imports cfgtag.
package cfgtag_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"cfgtag"
	"cfgtag/internal/serve"
)

// BenchmarkServeTCP pumps b.N streams through one key-multiplexed TCP
// connection against a live listener: each iteration opens a stream,
// sends an 8 KiB if/then/else payload and closes it, while a reader
// goroutine drains the interleaved TAG/END responses.
func BenchmarkServeTCP(b *testing.B) {
	cfg := &cfgtag.PlatformConfig{
		Tenants: []cfgtag.TenantDef{{
			Name:    "bench",
			Grammar: cfgtag.IfThenElseSource,
			Options: []string{"free-running-start"},
			Backend: "dfa",
			Shards:  2,
			Queue:   256,
		}},
	}
	srv := serve.NewServer()
	p, err := cfgtag.NewPlatform(cfg, srv.Deliver)
	if err != nil {
		b.Fatal(err)
	}
	srv.Bind(p)
	srv.SetStats(p)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv.AddInput(serve.NewTCPInput(ln, serve.TCPOptions{}))
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(time.Minute)

	payload := []byte(strings.Repeat("if a then if b then c else d ; ", 256)) // ~8 KiB
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	readerDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, conn)
		readerDone <- err
	}()
	w := bufio.NewWriterSize(conn, 64<<10)
	w.Write(serve.AppendHandshake(nil, serve.Handshake{Tenant: "bench", Mux: true}))

	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("s%d", i)
		frame := serve.AppendFrame(nil, serve.Frame{Op: serve.FrameOpen, Key: key})
		frame = serve.AppendFrame(frame, serve.Frame{Op: serve.FrameData, Key: key, Payload: payload})
		frame = serve.AppendFrame(frame, serve.Frame{Op: serve.FrameClose, Key: key})
		if _, err := w.Write(frame); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	// Keep the clock running until every stream's END line came back, so
	// MB/s reflects full end-to-end processing, not just ingestion.
	<-readerDone
	b.StopTimer()
}
