#!/bin/sh
# precision.sh — FSA precision rail.
#
# Runs cmd/precisionrail (stream tags vs the exact-language Earley oracle
# over the workload generators, per grammar and per grammar class) and
# compares the false-positive rates against the committed
# PRECISION_baseline.json. The measurement is deterministic in (seed,
# trials), so on an unchanged tree the rates reproduce exactly; the
# tolerance_pp headroom exists for deliberate engine changes that shift
# the approximation slightly. A rate rising above baseline + tolerance
# fails the gate — the FSA got *less* precise; falling rates only print.
# Oracle violations make precisionrail itself exit nonzero regardless of
# mode.
#
# Usage:
#   scripts/precision.sh            full run + gate against the baseline
#   scripts/precision.sh -smoke     reduced trial count (the baseline's
#                                   smoke_trials), gated against the
#                                   baseline's smoke section — the CI mode
#   scripts/precision.sh -update    full run + rewrite the baseline
#
# Environment:
#   PRECISION_TOLERANCE  gate tolerance in pp (default: tolerance_pp from baseline)
#   PRECISION_OUT        report directory     (default: precision_out)

set -eu
cd "$(dirname "$0")/.."

BASE=PRECISION_baseline.json
OUT=${PRECISION_OUT:-precision_out}

UPDATE=0
SMOKE=0
for arg in "$@"; do
    case "$arg" in
    -update) UPDATE=1 ;;
    -smoke)  SMOKE=1 ;;
    *) echo "precision.sh: unknown flag $arg" >&2; exit 2 ;;
    esac
done

mkdir -p "$OUT"

json_field() {
    awk -F'"' -v k="$1" '$2 == k { sub(/^[^:]*:[[:space:]]*/, ""); sub(/,[[:space:]]*$/, ""); gsub(/"/, ""); print; exit }' "$BASE"
}

if [ "$UPDATE" -eq 1 ]; then
    echo "== measuring precision (full) and rewriting $BASE"
    go run ./cmd/precisionrail -out "$BASE"
    echo "baseline updated; commit $BASE"
    exit 0
fi

[ -f "$BASE" ] || { echo "precision.sh: $BASE not found (run with -update to create it)" >&2; exit 2; }

SEED=$(json_field seed)
TRIALS=$(json_field trials)
SMOKE_TRIALS=$(json_field smoke_trials)
TOL=${PRECISION_TOLERANCE:-$(json_field tolerance_pp)}

MODE=full
[ "$SMOKE" -eq 1 ] && MODE=smoke

echo "== measuring precision ($MODE: seed $SEED, $TRIALS/$SMOKE_TRIALS trials)"
go run ./cmd/precisionrail -seed "$SEED" -trials "$TRIALS" -smoke-trials "$SMOKE_TRIALS" \
    -tolerance "$TOL" -out "$OUT/current.json"

# rates <file> <mode> — "label rate" per grammar and per class, from the
# requested section pair (grammars/classes or smoke_grammars/smoke_classes).
rates() {
    awk -F'"' -v mode="$2" '
        $2 ~ /^(smoke_)?(grammars|classes)$/ && /\[[[:space:]]*$/ {
            sec = ($2 ~ /^smoke_/) ? "smoke" : "full"
            next
        }
        $2 == "grammar" { g = $4 }
        $2 == "class" && $4 != "" { c = $4 }
        $2 == "fp_rate_pct" && sec == mode {
            v = $3
            sub(/^[^:]*:[[:space:]]*/, "", v); sub(/,[[:space:]]*$/, "", v)
            if (g != "") { print "grammar/" g, v } else { print "class/" c, v }
            g = ""; c = ""
        }
    ' "$1" | sort
}

rates "$BASE" "$MODE" > "$OUT/baseline.rates"
rates "$OUT/current.json" "$MODE" > "$OUT/current.rates"

[ -s "$OUT/baseline.rates" ] || { echo "precision.sh: no $MODE rates in $BASE" >&2; exit 2; }

echo "== false-positive rate gate (fail above baseline + ${TOL}pp)"
fail=0
while read -r name base; do
    cur=$(awk -v n="$name" '$1 == n { print $2 }' "$OUT/current.rates")
    if [ -z "$cur" ]; then
        echo "MISSING   $name (baseline ${base}pp, no current measurement)"
        fail=1
        continue
    fi
    verdict=$(awk -v b="$base" -v c="$cur" -v tol="$TOL" '
        BEGIN { print (c <= b + tol) ? "ok" : "REGRESSED" }')
    printf '%-9s %-28s %8.3f -> %8.3f pp\n' "$verdict" "$name" "$base" "$cur"
    [ "$verdict" = "ok" ] || fail=1
done < "$OUT/baseline.rates" | tee "$OUT/report.txt"

grep -Eq 'REGRESSED|MISSING' "$OUT/report.txt" && fail=1
if [ "$fail" -ne 0 ]; then
    echo "precision.sh: precision regression detected (see $OUT/report.txt)" >&2
    exit 1
fi
echo "precision.sh: no regression (report in $OUT/report.txt)"
