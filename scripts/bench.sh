#!/bin/sh
# bench.sh — benchmark-regression rail.
#
# Runs the guarded throughput benchmarks (BenchmarkStream, BenchmarkDFA,
# BenchmarkAOT, BenchmarkShardedPipeline, BenchmarkPipelineOverload,
# BenchmarkTenantGrid, BenchmarkServeTCP),
# compares per-benchmark median MB/s against the
# committed BENCH_baseline.json, and fails when any benchmark drops below
# (100 - tolerance_pct)% of its baseline median. When benchstat is on PATH
# it also prints a proper statistical comparison; the rail itself needs
# only awk, so CI boxes without benchstat still get the gate.
#
# Usage:
#   scripts/bench.sh                 run + compare against baseline
#   scripts/bench.sh -update         run + rewrite the baseline's raw samples
#   scripts/bench.sh -cpuprofile     also capture a CPU profile and print the
#                                    top 10 cumulative entries
#   scripts/bench.sh -memprofile     same for the allocation profile
#
# Profile flags compose with each other and with -update; profiles land in
# $BENCH_OUT/cpu.pprof and $BENCH_OUT/mem.pprof for deeper digging with
# `go tool pprof`.
#
# Environment:
#   BENCH_COUNT      samples per benchmark   (default: count from baseline)
#   BENCH_TIME       -benchtime per sample   (default: benchtime from baseline)
#   BENCH_TOLERANCE  allowed regression in % (default: tolerance_pct from baseline)
#   BENCH_OUT        report directory        (default: bench_out)

set -eu
cd "$(dirname "$0")/.."

BASE=BENCH_baseline.json
OUT=${BENCH_OUT:-bench_out}
PATTERN='^(BenchmarkStream|BenchmarkDFA|BenchmarkDFASparse|BenchmarkAOT|BenchmarkAOTSparse|BenchmarkShardedPipeline|BenchmarkPipelineOverload|BenchmarkTenantGrid|BenchmarkServeTCP)$'

UPDATE=0
CPUPROF=0
MEMPROF=0
for arg in "$@"; do
    case "$arg" in
    -update)     UPDATE=1 ;;
    -cpuprofile) CPUPROF=1 ;;
    -memprofile) MEMPROF=1 ;;
    *) echo "bench.sh: unknown flag $arg" >&2; exit 2 ;;
    esac
done

[ -f "$BASE" ] || { echo "bench.sh: $BASE not found" >&2; exit 2; }
mkdir -p "$OUT"

json_field() {
    awk -F'"' -v k="$1" '$2 == k { sub(/^[^:]*:[[:space:]]*/, ""); sub(/,[[:space:]]*$/, ""); gsub(/"/, ""); print; exit }' "$BASE"
}

COUNT=${BENCH_COUNT:-$(json_field count)}
BENCHTIME=${BENCH_TIME:-$(json_field benchtime)}
TOL=${BENCH_TOLERANCE:-$(json_field tolerance_pct)}

PROFILE_FLAGS=""
[ "$CPUPROF" -eq 1 ] && PROFILE_FLAGS="$PROFILE_FLAGS -cpuprofile $OUT/cpu.pprof"
[ "$MEMPROF" -eq 1 ] && PROFILE_FLAGS="$PROFILE_FLAGS -memprofile $OUT/mem.pprof"

echo "== running benchmarks ($COUNT x $BENCHTIME per benchmark)"
# shellcheck disable=SC2086 # PROFILE_FLAGS is deliberately word-split
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count "$COUNT" $PROFILE_FLAGS . | tee "$OUT/current.txt"

# pprof_top <file> <label> — top-10 cumulative entries of a profile.
pprof_top() {
    [ -f "$1" ] || { echo "bench.sh: profile $1 missing" >&2; return 1; }
    echo "== $2 profile: top 10 cumulative ($1)"
    go tool pprof -top -cum -nodecount=10 "$1" 2>/dev/null |
        awk '/^ *flat +flat%/ { hdr = 1 } hdr' | tee "$OUT/$2.top10.txt"
}

[ "$CPUPROF" -eq 1 ] && pprof_top "$OUT/cpu.pprof" cpu
[ "$MEMPROF" -eq 1 ] && pprof_top "$OUT/mem.pprof" mem

# Extract the baseline's verbatim benchmark lines from the JSON raw array.
awk -F'"' '/^[[:space:]]*"Benchmark/ { print $2 }' "$BASE" > "$OUT/baseline.txt"

if [ "$UPDATE" -eq 1 ]; then
    echo "== rewriting $BASE raw samples from this run"
    tmp=$(mktemp)
    awk -v cur="$OUT/current.txt" '
        /^[[:space:]]*"raw": \[/ {
            print
            n = 0
            while ((getline line < cur) > 0)
                if (line ~ /^Benchmark/) {
                    gsub(/\t/, " ", line); gsub(/  +/, " ", line)
                    lines[n++] = line
                }
            for (i = 0; i < n; i++)
                printf "    \"%s\"%s\n", lines[i], (i < n-1 ? "," : "")
            skip = 1; next
        }
        skip && /^[[:space:]]*\]/ { skip = 0 }
        !skip { print }
    ' "$BASE" > "$tmp" && mv "$tmp" "$BASE"
    echo "baseline updated; commit $BASE"
    exit 0
fi

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat baseline vs current"
    benchstat "$OUT/baseline.txt" "$OUT/current.txt" | tee "$OUT/benchstat.txt" || true
else
    echo "== benchstat not installed; using built-in median gate only"
fi

# Median-MB/s gate: mbps <file> — prints "name median" per benchmark. A
# trailing -N is the GOMAXPROCS suffix only when every line shares it;
# sub-benchmark names like shards-8 keep theirs.
mbps() {
    awk '
        /^Benchmark/ && / MB\/s/ {
            rows++
            rowname[rows] = $1
            for (i = 2; i <= NF; i++)
                if ($i == "MB/s") rowval[rows] = $(i-1)
            sfx = match($1, /-[0-9]+$/) ? substr($1, RSTART) : ""
            if (rows == 1) common = sfx
            else if (sfx != common) common = ""
        }
        END {
            for (r = 1; r <= rows; r++) {
                name = rowname[r]
                if (common != "")
                    name = substr(name, 1, length(name) - length(common))
                vals[name] = vals[name] " " rowval[r]
            }
            for (name in vals) {
                n = split(vals[name], a, " ")
                # insertion sort; n is tiny
                for (i = 2; i <= n; i++) {
                    x = a[i]
                    for (j = i - 1; j >= 1 && a[j] > x + 0; j--) a[j+1] = a[j]
                    a[j+1] = x
                }
                m = (n % 2) ? a[(n+1)/2] : (a[n/2] + a[n/2+1]) / 2
                printf "%s %.2f\n", name, m
            }
        }
    ' "$1" | sort
}

mbps "$OUT/baseline.txt" > "$OUT/baseline.medians"
mbps "$OUT/current.txt" > "$OUT/current.medians"

echo "== median MB/s gate (fail below $((100 - TOL))% of baseline)"
fail=0
while read -r name base; do
    cur=$(awk -v n="$name" '$1 == n { print $2 }' "$OUT/current.medians")
    if [ -z "$cur" ]; then
        echo "MISSING  $name (baseline $base MB/s, no current sample)"
        fail=1
        continue
    fi
    verdict=$(awk -v b="$base" -v c="$cur" -v tol="$TOL" '
        BEGIN { print (c >= b * (100 - tol) / 100) ? "ok" : "REGRESSED" }')
    printf '%-9s %-45s %8.2f -> %8.2f MB/s\n' "$verdict" "$name" "$base" "$cur"
    [ "$verdict" = "ok" ] || fail=1
done < "$OUT/baseline.medians" | tee "$OUT/report.txt"

grep -Eq 'REGRESSED|MISSING' "$OUT/report.txt" && fail=1
if [ "$fail" -ne 0 ]; then
    echo "bench.sh: benchmark regression detected (see $OUT/report.txt)" >&2
    exit 1
fi
echo "bench.sh: no regression (report in $OUT/report.txt)"
