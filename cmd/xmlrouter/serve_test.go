package main

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cfgtag/internal/xmlrpc"
)

// lineSink is a fake back-end service: a TCP listener counting the
// newline-delimited messages the router forwards to it.
type lineSink struct {
	ln    net.Listener
	lines atomic.Int64
}

func newLineSink(t *testing.T) *lineSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &lineSink{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
				for sc.Scan() {
					s.lines.Add(1)
				}
			}(conn)
		}
	}()
	return s
}

func (s *lineSink) addr() string { return s.ln.Addr().String() }

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestListenerDrainNoByteLoss proves the SIGTERM drain path loses no
// in-flight bytes in either deployment shape: a client writes half its
// corpus, Shutdown begins mid-stream (new connections are refused), the
// client finishes, and every message still reaches the back-end server
// its content selects.
func TestListenerDrainNoByteLoss(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			bank, shop := newLineSink(t), newLineSink(t)
			srv, addr, err := buildRouterServer("127.0.0.1:0", bank.addr(), shop.addr(), "",
				pipelineConfig{shards: shards, batchBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}

			const messages = 60
			gen := xmlrpc.NewGenerator(7, xmlrpc.Options{})
			corpus, services := gen.Corpus(messages)
			wantBank, wantShop := 0, 0
			for _, s := range services {
				if xmlrpc.ServiceDestination(s) == 0 {
					wantBank++
				} else {
					wantShop++
				}
			}

			client, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			half := len(corpus) / 2
			if _, err := client.Write([]byte(corpus[:half])); err != nil {
				t.Fatal(err)
			}
			waitCond(t, 5*time.Second, "stream registered", func() bool {
				return srv.ActiveSessions() == 1
			})

			// Begin the drain mid-stream, exactly as SIGTERM would.
			shutdownErr := make(chan error, 1)
			go func() { shutdownErr <- srv.Shutdown(time.Minute) }()
			waitCond(t, 5*time.Second, "draining state", func() bool {
				return srv.Draining()
			})

			// New work is refused while draining...
			late, err := net.Dial("tcp", addr)
			if err == nil {
				late.SetReadDeadline(time.Now().Add(5 * time.Second))
				buf := make([]byte, 64)
				if n, _ := late.Read(buf); n > 0 {
					t.Fatalf("refused conn got %d unexpected bytes: %q", n, buf[:n])
				}
				late.Close()
			}

			// ...but the in-flight stream finishes and loses nothing.
			if _, err := client.Write(append([]byte(corpus[half:]), '\n')); err != nil {
				t.Fatal(err)
			}
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			if err := <-shutdownErr; err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if n := srv.ActiveSessions(); n != 0 {
				t.Fatalf("ActiveSessions after drain = %d, want 0", n)
			}
			waitCond(t, 5*time.Second, "sink byte counts", func() bool {
				return int(bank.lines.Load()) == wantBank && int(shop.lines.Load()) == wantShop
			})
			if srv.Refused() == 0 {
				t.Fatal("draining refusal was not counted")
			}
		})
	}
}
