// Command xmlrouter is the figure 12 demo: an XML-RPC content-based
// message router. It accepts TCP connections carrying streams of XML-RPC
// methodCall messages (figure 14 dialect) and forwards each message to the
// back-end address registered for its service — bank services (deposit,
// withdraw, acctinfo) to one server, shopping services (buy, sell, price)
// to another.
//
// With -demo it is fully self-contained: it starts two sink servers and a
// traffic generator, routes the generated messages, and prints the per-
// port tallies.
//
// Usage:
//
//	xmlrouter -listen :8700 -bank bank.internal:9000 -shop shop.internal:9001
//	xmlrouter -demo -messages 200
//	xmlrouter -stdin           # read one stream from stdin, print routes
//	xmlrouter -demo -shards 8  # tag on a sharded pipeline, route in a Sink
//
// With -shards N the per-connection inline router is replaced by one shared
// sharded pipeline: connections become keyed streams, N tagger shards run
// the grammar engine, and a single router.Sink consumes the tag batches and
// forwards messages — the software shape of the paper's replicated-hardware
// deployment.
//
// With -config FILE the process hosts many tenant routers at once, each
// with its own listen address, grammar, route addresses and pipeline
// knobs, declared in a JSON file. SIGHUP re-reads every tenant's
// grammar_file and hot-swaps changed grammars with zero downtime:
// connections alive across the swap keep routing on the grammar that
// tagged their first bytes.
//
//	xmlrouter -config routers.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/router"
	"cfgtag/internal/runtime"
	"cfgtag/internal/serve"
	"cfgtag/internal/xmlrpc"
)

func main() {
	var (
		listen       = flag.String("listen", ":8700", "address to accept message streams on")
		bank         = flag.String("bank", "", "bank server address (deposit, withdraw, acctinfo)")
		shop         = flag.String("shop", "", "shopping server address (buy, sell, price)")
		fallback     = flag.String("default", "", "address for unknown services (default: drop)")
		demo         = flag.Bool("demo", false, "self-contained demo: sinks + generator + router")
		stdin        = flag.Bool("stdin", false, "route a single stream from stdin to stdout")
		messages     = flag.Int("messages", 100, "messages to generate in -demo mode")
		seed         = flag.Int64("seed", 1, "generator seed in -demo mode")
		validateMsgs = flag.Bool("validate", false, "stack-validate messages; malformed ones route to the quarantine port")
		shards       = flag.Int("shards", 0, "tag on a sharded pipeline with this many shards (0 = inline router per connection)")
		maxStreams   = flag.Int("max-streams", 0, "cap live streams per shard; the least-recently-fed stream is flushed at the cap (0 = unlimited)")
		quarantine   = flag.Duration("quarantine", 0, "how long a stream is rejected after its backend faults (0 = 30s default, negative = disabled)")
		batchBytes   = flag.Int("batch-bytes", 0, "coalesce chunks into per-shard batches of this many bytes (0 = 64 KiB default, negative = dispatch immediately)")
		configFile   = flag.String("config", "", "multi-tenant JSON config: one router per tenant, SIGHUP hot-swaps changed grammars")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for live streams to finish before force-flushing them")
	)
	flag.Parse()

	pcfg := pipelineConfig{shards: *shards, maxStreams: *maxStreams, quarantine: *quarantine, batchBytes: *batchBytes}
	switch {
	case *configFile != "":
		if err := runConfig(*configFile, *drainWait); err != nil {
			fail(err)
		}
	case *stdin:
		if err := routeStdin(*validateMsgs); err != nil {
			fail(err)
		}
	case *demo:
		if err := runDemo(*messages, *seed, pcfg); err != nil {
			fail(err)
		}
	default:
		if *bank == "" || *shop == "" {
			fail(fmt.Errorf("need -bank and -shop addresses (or -demo / -stdin)"))
		}
		if err := runListener(*listen, *bank, *shop, *fallback, pcfg, *drainWait); err != nil {
			fail(err)
		}
	}
}

// awaitDrain blocks until SIGTERM/SIGINT, then drains srv: stop
// accepting, wait for live connections to finish (up to drain), flush
// whatever remains through the pipeline so no in-flight bytes are
// dropped, and close the listeners.
func awaitDrain(srv *serve.Server, drain time.Duration) error {
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(term)
	<-term
	fmt.Fprintln(os.Stderr, "xmlrouter: draining...")
	if err := srv.Shutdown(drain); err != nil {
		if errors.Is(err, serve.ErrDrainTimeout) {
			fmt.Fprintf(os.Stderr, "xmlrouter: drain deadline (%v) hit; open streams were force-flushed\n", drain)
		}
		return err
	}
	fmt.Fprintln(os.Stderr, "xmlrouter: drained clean")
	return nil
}

// pipelineConfig carries the sharded-deployment knobs from the flags to
// the switchboard.
type pipelineConfig struct {
	shards     int
	maxStreams int
	quarantine time.Duration
	batchBytes int
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xmlrouter:", err)
	os.Exit(1)
}

// routeStdin routes one stream from stdin, printing "port service bytes"
// per message. With validate, malformed messages route to port -2.
func routeStdin(validate bool) error {
	r, err := router.New(router.FigureTwelve(), -1)
	if err != nil {
		return err
	}
	if validate {
		if err := r.EnableValidation(0, -2); err != nil {
			return err
		}
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	r.OnRoute = func(port int, service string, message []byte) {
		fmt.Fprintf(out, "port=%d service=%s bytes=%d\n", port, service, len(message))
	}
	if _, err := io.Copy(r, bufio.NewReader(os.Stdin)); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	st := r.Stats()
	fmt.Fprintf(out, "routed %d messages (%d unknown, %d invalid)\n", st.Messages, st.Unknown, st.Invalid)
	return nil
}

// runListener is the production shape behind the serve layer: every
// inbound connection is one raw stream (no protocol, no echo), tagged
// either inline (shards = 0, one router per stream) or on one shared
// sharded pipeline with a router.Sink. SIGTERM drains gracefully — no
// in-flight bytes are dropped.
func runListener(listen, bank, shop, fallback string, pcfg pipelineConfig, drain time.Duration) error {
	srv, _, err := buildRouterServer(listen, bank, shop, fallback, pcfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	return awaitDrain(srv, drain)
}

// routerTenant is the fixed tenant name of single-router deployments.
const routerTenant = "router"

// buildRouterServer assembles the single-router server: a raw TCP input
// bound to either the inline core or a switchboard core. It returns the
// bound listen address for tests that pick port 0.
func buildRouterServer(listen, bank, shop, fallback string, pcfg pipelineConfig) (*serve.Server, string, error) {
	srv := serve.NewServer()
	if pcfg.shards > 0 {
		spec, err := xmlrpcSpec()
		if err != nil {
			return nil, "", err
		}
		sw, err := newSwitchboard(spec, bank, shop, fallback, pcfg,
			func(key string) { srv.EndStream(routerTenant, key) })
		if err != nil {
			return nil, "", err
		}
		srv.Bind(swCore{sw})
	} else {
		srv.Bind(newInlineCore(srv, routerTenant, bank, shop, fallback))
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		srv.Core().Close()
		return nil, "", err
	}
	srv.AddInput(serve.NewTCPInput(ln, serve.TCPOptions{
		Tenant: routerTenant, Raw: true, NoEcho: true,
	}))
	fmt.Printf("xmlrouter: listening on %s (bank=%s shop=%s shards=%d)\n", ln.Addr(), bank, shop, pcfg.shards)
	return srv, ln.Addr().String(), nil
}

// swCore adapts one switchboard to serve.Core; the tenant is implied by
// the listener, so only the stream key reaches the pipeline.
type swCore struct{ sw *switchboard }

func (c swCore) Send(_, key string, data []byte) error { return c.sw.pipeline.Send(key, data) }
func (c swCore) CloseStream(_, key string) error       { return c.sw.pipeline.CloseStream(key) }
func (c swCore) Close() error                          { return c.sw.Close() }

// inlineCore adapts the shards=0 deployment to serve.Core: one router
// instance per stream, created on first byte, routing to per-stream
// back-end connections. Sessions end synchronously in CloseStream, so no
// EOS batch plumbing is needed.
type inlineCore struct {
	srv                          *serve.Server
	tenant, bank, shop, fallback string

	mu      sync.Mutex
	streams map[string]*inlineStream
	closed  bool
}

type inlineStream struct {
	// mu serializes the feeding connection against a force-flush from
	// the drain path (Close on a timed-out drain races the last Write).
	mu    sync.Mutex
	r     *router.Router
	conns map[int]net.Conn
	err   error
}

func newInlineCore(srv *serve.Server, tenant, bank, shop, fallback string) *inlineCore {
	return &inlineCore{
		srv: srv, tenant: tenant, bank: bank, shop: shop, fallback: fallback,
		streams: make(map[string]*inlineStream),
	}
}

// stream returns the key's router, creating it on first use.
func (c *inlineCore) stream(key string) (*inlineStream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, runtime.ErrClosed
	}
	if st, ok := c.streams[key]; ok {
		return st, nil
	}
	r, err := router.New(router.FigureTwelve(), 2)
	if err != nil {
		return nil, err
	}
	st := &inlineStream{r: r, conns: make(map[int]net.Conn)}
	addrs := map[int]string{0: c.bank, 1: c.shop}
	if c.fallback != "" {
		addrs[2] = c.fallback
	}
	r.OnRoute = func(port int, service string, message []byte) {
		if st.err != nil {
			return
		}
		bc, ok := st.conns[port]
		if !ok {
			addr, have := addrs[port]
			if !have {
				return // drop
			}
			var err error
			if bc, err = net.Dial("tcp", addr); err != nil {
				st.err = err
				return
			}
			st.conns[port] = bc
		}
		if _, err := bc.Write(append(message, '\n')); err != nil {
			st.err = err
		}
	}
	c.streams[key] = st
	return st, nil
}

func (c *inlineCore) Send(_, key string, data []byte) error {
	st, err := c.stream(key)
	if err != nil {
		return err
	}
	st.mu.Lock()
	_, werr := st.r.Write(data)
	ferr := st.err
	st.mu.Unlock()
	if werr == nil {
		werr = ferr
	}
	if werr != nil {
		c.drop(key)
		return werr
	}
	return nil
}

func (c *inlineCore) CloseStream(_, key string) error {
	c.mu.Lock()
	st := c.streams[key]
	delete(c.streams, key)
	c.mu.Unlock()
	defer c.srv.EndStream(c.tenant, key)
	if st == nil {
		return nil // zero-byte stream: never materialized
	}
	return st.close()
}

// drop discards a failed stream's state; the caller reports the error.
func (c *inlineCore) drop(key string) {
	c.mu.Lock()
	st := c.streams[key]
	delete(c.streams, key)
	c.mu.Unlock()
	if st != nil {
		st.close()
	}
}

func (st *inlineStream) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	err := st.r.Close()
	for _, bc := range st.conns {
		bc.Close()
	}
	if err != nil {
		return err
	}
	return st.err
}

// Close flushes every stream still open (the drain's force-flush path).
func (c *inlineCore) Close() error {
	c.mu.Lock()
	c.closed = true
	streams := c.streams
	c.streams = make(map[string]*inlineStream)
	c.mu.Unlock()
	var first error
	for key, st := range streams {
		if err := st.close(); err != nil && first == nil {
			first = err
		}
		c.srv.EndStream(c.tenant, key)
	}
	return first
}

// switchboard is the sharded deployment: one pipeline shared by every
// connection, with a router.Sink forwarding completed messages over
// persistent back-end connections (opened lazily from the sink goroutine,
// which serializes all OnRoute calls).
type switchboard struct {
	pipeline *runtime.Pipeline
	sink     *router.Sink
	addrs    map[int]string
	conns    map[int]net.Conn
	fwdErr   error
	nextConn int64
	reloadMu sync.Mutex // serializes grammar hot-swaps
}

// xmlrpcSpec compiles the built-in figure 14 grammar the way the router
// needs it: free-running so long-lived connections route message after
// message.
func xmlrpcSpec() (*core.Spec, error) {
	return core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
}

// eosSink decorates a pipeline sink with a stream-end callback — the
// serve layer uses it to release a stream's session (and let its
// connection hang up) once the final batch has been routed.
type eosSink struct {
	runtime.Sink
	onEOS func(key string)
}

func (s eosSink) Deliver(b *runtime.Batch) error {
	if err := s.Sink.Deliver(b); err != nil {
		return err
	}
	if b.EOS {
		s.onEOS(b.Key)
	}
	return nil
}

func newSwitchboard(spec *core.Spec, bank, shop, fallback string, pcfg pipelineConfig, onEOS func(key string)) (*switchboard, error) {
	sink, err := router.NewSink(spec, "methodName", router.FigureTwelve(), 2)
	if err != nil {
		return nil, err
	}
	sw := &switchboard{
		sink:  sink,
		addrs: map[int]string{0: bank, 1: shop},
		conns: make(map[int]net.Conn),
	}
	if fallback != "" {
		sw.addrs[2] = fallback
	}
	sink.OnRoute = func(stream string, port int, service string, message []byte) {
		if sw.fwdErr != nil {
			return
		}
		bc, ok := sw.conns[port]
		if !ok {
			addr, have := sw.addrs[port]
			if !have {
				return // drop
			}
			bc, err = net.Dial("tcp", addr)
			if err != nil {
				sw.fwdErr = err
				return
			}
			sw.conns[port] = bc
		}
		if _, err := bc.Write(append(message, '\n')); err != nil {
			sw.fwdErr = err
		}
	}
	// The router's sink mutates shared per-service connections, so the
	// pipeline keeps the single serialized sink worker; only batching is
	// configurable here.
	var pipeSink runtime.Sink = sink
	if onEOS != nil {
		pipeSink = eosSink{Sink: sink, onEOS: onEOS}
	}
	sw.pipeline, err = runtime.NewPipeline(runtime.Config{
		Shards:     pcfg.shards,
		Factory:    runtime.TaggerFactory(spec),
		MaxStreams: pcfg.maxStreams,
		Quarantine: pcfg.quarantine,
		BatchBytes: pcfg.batchBytes,
		Hooks:      &runtime.Hooks{VersionRetired: sink.DropVersion},
	}, pipeSink)
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// Reload hot-swaps the switchboard's grammar with zero downtime: the spec
// is staged in the version-aware sink, published as a new factory version,
// and bound to the id the swap returns. Connections alive across the swap
// keep routing on the grammar that tagged their first bytes; new
// connections run the new one.
func (sw *switchboard) Reload(spec *core.Spec) (int, error) {
	sw.reloadMu.Lock()
	defer sw.reloadMu.Unlock()
	if err := sw.sink.StageVersion(spec); err != nil {
		return 0, err
	}
	v, err := sw.pipeline.SwapFactory(runtime.TaggerFactory(spec))
	if err != nil {
		sw.sink.CommitVersion(0)
		return 0, err
	}
	sw.sink.CommitVersion(v)
	return v, nil
}

// HandleConn pumps one connection into the pipeline as its own stream.
func (sw *switchboard) HandleConn(c net.Conn) error {
	key := fmt.Sprintf("conn-%d-%s", atomic.AddInt64(&sw.nextConn, 1), c.RemoteAddr())
	buf := make([]byte, 32<<10)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			if serr := sw.pipeline.Send(key, buf[:n]); serr != nil {
				return serr
			}
		}
		if err == io.EOF {
			return sw.pipeline.CloseStream(key)
		}
		if err != nil {
			sw.pipeline.CloseStream(key)
			return err
		}
	}
}

// Close drains the pipeline and closes the back-end connections.
func (sw *switchboard) Close() error {
	err := sw.pipeline.Close()
	for _, bc := range sw.conns {
		bc.Close()
	}
	if err != nil {
		return err
	}
	return sw.fwdErr
}

func routeConn(c net.Conn, bank, shop, fallback string) error {
	addrs := map[int]string{0: bank, 1: shop}
	if fallback != "" {
		addrs[2] = fallback
	}
	conns := make(map[int]net.Conn)
	defer func() {
		for _, bc := range conns {
			bc.Close()
		}
	}()
	backend := func(port int) (net.Conn, error) {
		if bc, ok := conns[port]; ok {
			return bc, nil
		}
		addr, ok := addrs[port]
		if !ok {
			return nil, nil // drop
		}
		bc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		conns[port] = bc
		return bc, nil
	}

	r, err := router.New(router.FigureTwelve(), 2)
	if err != nil {
		return err
	}
	var routeErr error
	r.OnRoute = func(port int, service string, message []byte) {
		if routeErr != nil {
			return
		}
		bc, err := backend(port)
		if err != nil || bc == nil {
			routeErr = err
			return
		}
		if _, err := bc.Write(append(message, '\n')); err != nil {
			routeErr = err
		}
	}
	if _, err := io.Copy(r, c); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	return routeErr
}

// runDemo spins up two sink servers, routes generated traffic through a
// TCP round trip, and prints what each sink received. With shards > 0 the
// router side runs the sharded pipeline instead of the inline router.
func runDemo(messages int, seed int64, pcfg pipelineConfig) error {
	sinkCounts := [2]int64{}
	var wg sync.WaitGroup
	sinkAddr := [2]string{}
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		sinkAddr[i] = ln.Addr().String()
		idx := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				atomic.AddInt64(&sinkCounts[idx], 1)
			}
		}()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	routerDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			routerDone <- err
			return
		}
		defer conn.Close()
		if pcfg.shards > 0 {
			spec, err := xmlrpcSpec()
			if err != nil {
				routerDone <- err
				return
			}
			sw, err := newSwitchboard(spec, sinkAddr[0], sinkAddr[1], "", pcfg, nil)
			if err != nil {
				routerDone <- err
				return
			}
			if err := sw.HandleConn(conn); err != nil {
				sw.Close()
				routerDone <- err
				return
			}
			routerDone <- sw.Close()
			return
		}
		routerDone <- routeConn(conn, sinkAddr[0], sinkAddr[1], "")
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	gen := xmlrpc.NewGenerator(seed, xmlrpc.Options{})
	corpus, services := gen.Corpus(messages)
	if _, err := client.Write(append([]byte(corpus), '\n')); err != nil {
		return err
	}
	client.Close()
	if err := <-routerDone; err != nil {
		return err
	}
	wg.Wait()

	wantBank, wantShop := 0, 0
	for _, s := range services {
		if xmlrpc.ServiceDestination(s) == 0 {
			wantBank++
		} else {
			wantShop++
		}
	}
	fmt.Printf("generated %d messages\n", messages)
	fmt.Printf("bank sink     received %d (expected %d)\n", sinkCounts[0], wantBank)
	fmt.Printf("shopping sink received %d (expected %d)\n", sinkCounts[1], wantShop)
	if int(sinkCounts[0]) != wantBank || int(sinkCounts[1]) != wantShop {
		return fmt.Errorf("demo routing mismatch")
	}
	fmt.Println("demo OK: every message reached the server its content selects")
	return nil
}

// tenantRouter declares one tenant in -config mode: its own listen
// address, grammar, back-end addresses and pipeline knobs.
type tenantRouter struct {
	// Name identifies the tenant; required, unique within the config.
	Name string `json:"name"`
	// Listen is the tenant's accept address; required.
	Listen string `json:"listen"`
	// Bank and Shop are the two back-end addresses of the figure 12 route
	// table; both required. Default receives unknown services ("" = drop).
	Bank    string `json:"bank"`
	Shop    string `json:"shop"`
	Default string `json:"default,omitempty"`
	// GrammarFile is the tenant's grammar source path; empty selects the
	// built-in figure 14 XML-RPC grammar. SIGHUP re-reads the file and
	// hot-swaps the grammar when it changed. The grammar must keep a
	// methodName production carrying the service name.
	GrammarFile string `json:"grammar_file,omitempty"`
	// Shards, MaxStreams, Quarantine and BatchBytes mirror the flags of
	// -shards mode (Shards 0 = GOMAXPROCS here; Quarantine is a Go
	// duration string).
	Shards     int    `json:"shards,omitempty"`
	MaxStreams int    `json:"max_streams,omitempty"`
	Quarantine string `json:"quarantine,omitempty"`
	BatchBytes int    `json:"batch_bytes,omitempty"`
}

// routerConfig is the -config file: one router per tenant.
type routerConfig struct {
	Routers []tenantRouter `json:"routers"`
}

// loadRouterConfig reads, strictly decodes and validates a -config file.
func loadRouterConfig(path string) (*routerConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg routerConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("config %s: trailing data after config object", path)
	}
	if len(cfg.Routers) == 0 {
		return nil, fmt.Errorf("config %s: at least one router is required", path)
	}
	seen := make(map[string]bool)
	for i, def := range cfg.Routers {
		switch {
		case def.Name == "":
			return nil, fmt.Errorf("config %s: routers[%d]: name is required", path, i)
		case seen[def.Name]:
			return nil, fmt.Errorf("config %s: routers[%d]: duplicate name %q", path, i, def.Name)
		case def.Listen == "":
			return nil, fmt.Errorf("config %s: router %q: listen is required", path, def.Name)
		case def.Bank == "" || def.Shop == "":
			return nil, fmt.Errorf("config %s: router %q: bank and shop addresses are required", path, def.Name)
		}
		seen[def.Name] = true
		if def.Quarantine != "" {
			if _, err := time.ParseDuration(def.Quarantine); err != nil {
				return nil, fmt.Errorf("config %s: router %q: quarantine: %w", path, def.Name, err)
			}
		}
	}
	return &cfg, nil
}

// tenantSpec compiles a tenant's grammar (file-based or the built-in
// figure 14 dialect) and returns the applied source text for change
// detection.
func tenantSpec(def tenantRouter) (*core.Spec, string, error) {
	if def.GrammarFile == "" {
		spec, err := xmlrpcSpec()
		return spec, "", err
	}
	src, err := os.ReadFile(def.GrammarFile)
	if err != nil {
		return nil, "", fmt.Errorf("router %q: %w", def.Name, err)
	}
	g, err := grammar.Parse(def.Name, string(src))
	if err != nil {
		return nil, "", fmt.Errorf("router %q: %w", def.Name, err)
	}
	spec, err := core.Compile(g, core.Options{FreeRunningStart: true})
	if err != nil {
		return nil, "", fmt.Errorf("router %q: %w", def.Name, err)
	}
	return spec, string(src), nil
}

// tenantInstance is one running tenant router: its definition, its
// switchboard, and the grammar source currently applied.
type tenantInstance struct {
	def     tenantRouter
	sw      *switchboard
	applied string
}

// multiCore routes serve.Core calls to the per-tenant switchboards; the
// tenant name comes from the listener each connection arrived on.
type multiCore struct{ tenants map[string]*switchboard }

func (c multiCore) Send(tenant, key string, data []byte) error {
	sw, ok := c.tenants[tenant]
	if !ok {
		return fmt.Errorf("unknown tenant %q", tenant)
	}
	return sw.pipeline.Send(key, data)
}

func (c multiCore) CloseStream(tenant, key string) error {
	sw, ok := c.tenants[tenant]
	if !ok {
		return fmt.Errorf("unknown tenant %q", tenant)
	}
	return sw.pipeline.CloseStream(key)
}

func (c multiCore) Close() error {
	var first error
	for _, sw := range c.tenants {
		if err := sw.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// buildConfigServer assembles the -config server: one raw TCP input per
// tenant, all bound to one serve.Server over the per-tenant
// switchboards. It returns the tenant instances for the SIGHUP handler.
func buildConfigServer(path string) (*serve.Server, []*tenantInstance, error) {
	cfg, err := loadRouterConfig(path)
	if err != nil {
		return nil, nil, err
	}
	srv := serve.NewServer()
	cores := make(map[string]*switchboard, len(cfg.Routers))
	tenants := make([]*tenantInstance, 0, len(cfg.Routers))
	var lns []net.Listener
	cleanup := func() {
		for _, ln := range lns {
			ln.Close()
		}
		for _, tn := range tenants {
			tn.sw.Close()
		}
	}
	for _, def := range cfg.Routers {
		spec, src, err := tenantSpec(def)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		quar := time.Duration(0)
		if def.Quarantine != "" {
			quar, _ = time.ParseDuration(def.Quarantine) // validated by loadRouterConfig
		}
		name := def.Name
		sw, err := newSwitchboard(spec, def.Bank, def.Shop, def.Default, pipelineConfig{
			shards:     def.Shards,
			maxStreams: def.MaxStreams,
			quarantine: quar,
			batchBytes: def.BatchBytes,
		}, func(key string) { srv.EndStream(name, key) })
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("router %q: %w", def.Name, err)
		}
		tenants = append(tenants, &tenantInstance{def: def, sw: sw, applied: src})
		cores[def.Name] = sw
		ln, err := net.Listen("tcp", def.Listen)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("router %q: %w", def.Name, err)
		}
		lns = append(lns, ln)
		srv.AddInput(serve.NewTCPInput(ln, serve.TCPOptions{
			Tenant: def.Name, Raw: true, NoEcho: true,
		}))
		fmt.Printf("xmlrouter: tenant %q listening on %s (bank=%s shop=%s shards=%d)\n",
			def.Name, ln.Addr(), def.Bank, def.Shop, def.Shards)
	}
	srv.Bind(multiCore{tenants: cores})
	return srv, tenants, nil
}

// runConfig is -config mode: every tenant router accepts on its own
// address with its own pipeline and grammar; SIGHUP re-reads each tenant's
// grammar_file and hot-swaps changed grammars with zero downtime, and
// SIGTERM drains every tenant's listener through the serve layer.
func runConfig(path string, drain time.Duration) error {
	srv, tenants, err := buildConfigServer(path)
	if err != nil {
		return err
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			for _, tn := range tenants {
				reloadTenant(tn)
			}
		}
	}()
	if err := srv.Start(); err != nil {
		return err
	}
	return awaitDrain(srv, drain)
}

// reloadTenant re-reads one tenant's grammar_file and hot-swaps it when
// the source changed; errors leave the running grammar untouched.
func reloadTenant(tn *tenantInstance) {
	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "xmlrouter: reload: "+format+"\n", args...)
	}
	if tn.def.GrammarFile == "" {
		return // built-in grammar, nothing to re-read
	}
	spec, src, err := tenantSpec(tn.def)
	if err != nil {
		warn("%v", err)
		return
	}
	if src == tn.applied {
		return
	}
	v, err := tn.sw.Reload(spec)
	if err != nil {
		warn("router %q: %v", tn.def.Name, err)
		return
	}
	tn.applied = src
	warn("router %q reloaded as version %d", tn.def.Name, v)
}
