// Command xmlrouter is the figure 12 demo: an XML-RPC content-based
// message router. It accepts TCP connections carrying streams of XML-RPC
// methodCall messages (figure 14 dialect) and forwards each message to the
// back-end address registered for its service — bank services (deposit,
// withdraw, acctinfo) to one server, shopping services (buy, sell, price)
// to another.
//
// With -demo it is fully self-contained: it starts two sink servers and a
// traffic generator, routes the generated messages, and prints the per-
// port tallies.
//
// Usage:
//
//	xmlrouter -listen :8700 -bank bank.internal:9000 -shop shop.internal:9001
//	xmlrouter -demo -messages 200
//	xmlrouter -stdin           # read one stream from stdin, print routes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"cfgtag/internal/router"
	"cfgtag/internal/xmlrpc"
)

func main() {
	var (
		listen       = flag.String("listen", ":8700", "address to accept message streams on")
		bank         = flag.String("bank", "", "bank server address (deposit, withdraw, acctinfo)")
		shop         = flag.String("shop", "", "shopping server address (buy, sell, price)")
		fallback     = flag.String("default", "", "address for unknown services (default: drop)")
		demo         = flag.Bool("demo", false, "self-contained demo: sinks + generator + router")
		stdin        = flag.Bool("stdin", false, "route a single stream from stdin to stdout")
		messages     = flag.Int("messages", 100, "messages to generate in -demo mode")
		seed         = flag.Int64("seed", 1, "generator seed in -demo mode")
		validateMsgs = flag.Bool("validate", false, "stack-validate messages; malformed ones route to the quarantine port")
	)
	flag.Parse()

	switch {
	case *stdin:
		if err := routeStdin(*validateMsgs); err != nil {
			fail(err)
		}
	case *demo:
		if err := runDemo(*messages, *seed); err != nil {
			fail(err)
		}
	default:
		if *bank == "" || *shop == "" {
			fail(fmt.Errorf("need -bank and -shop addresses (or -demo / -stdin)"))
		}
		if err := serve(*listen, *bank, *shop, *fallback); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xmlrouter:", err)
	os.Exit(1)
}

// routeStdin routes one stream from stdin, printing "port service bytes"
// per message. With validate, malformed messages route to port -2.
func routeStdin(validate bool) error {
	r, err := router.New(router.FigureTwelve(), -1)
	if err != nil {
		return err
	}
	if validate {
		if err := r.EnableValidation(0, -2); err != nil {
			return err
		}
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	r.OnRoute = func(port int, service string, message []byte) {
		fmt.Fprintf(out, "port=%d service=%s bytes=%d\n", port, service, len(message))
	}
	if _, err := io.Copy(r, bufio.NewReader(os.Stdin)); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	st := r.Stats()
	fmt.Fprintf(out, "routed %d messages (%d unknown, %d invalid)\n", st.Messages, st.Unknown, st.Invalid)
	return nil
}

// serve runs the production shape: one router per inbound connection,
// forwarding messages over persistent connections to the back ends.
func serve(listen, bank, shop, fallback string) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("xmlrouter: listening on %s (bank=%s shop=%s)\n", ln.Addr(), bank, shop)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := routeConn(c, bank, shop, fallback); err != nil {
				fmt.Fprintln(os.Stderr, "xmlrouter:", err)
			}
		}(conn)
	}
}

func routeConn(c net.Conn, bank, shop, fallback string) error {
	addrs := map[int]string{0: bank, 1: shop}
	if fallback != "" {
		addrs[2] = fallback
	}
	conns := make(map[int]net.Conn)
	defer func() {
		for _, bc := range conns {
			bc.Close()
		}
	}()
	backend := func(port int) (net.Conn, error) {
		if bc, ok := conns[port]; ok {
			return bc, nil
		}
		addr, ok := addrs[port]
		if !ok {
			return nil, nil // drop
		}
		bc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		conns[port] = bc
		return bc, nil
	}

	r, err := router.New(router.FigureTwelve(), 2)
	if err != nil {
		return err
	}
	var routeErr error
	r.OnRoute = func(port int, service string, message []byte) {
		if routeErr != nil {
			return
		}
		bc, err := backend(port)
		if err != nil || bc == nil {
			routeErr = err
			return
		}
		if _, err := bc.Write(append(message, '\n')); err != nil {
			routeErr = err
		}
	}
	if _, err := io.Copy(r, c); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	return routeErr
}

// runDemo spins up two sink servers, routes generated traffic through a
// TCP round trip, and prints what each sink received.
func runDemo(messages int, seed int64) error {
	sinkCounts := [2]int64{}
	var wg sync.WaitGroup
	sinkAddr := [2]string{}
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		sinkAddr[i] = ln.Addr().String()
		idx := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				atomic.AddInt64(&sinkCounts[idx], 1)
			}
		}()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	routerDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			routerDone <- err
			return
		}
		defer conn.Close()
		routerDone <- routeConn(conn, sinkAddr[0], sinkAddr[1], "")
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	gen := xmlrpc.NewGenerator(seed, xmlrpc.Options{})
	corpus, services := gen.Corpus(messages)
	if _, err := client.Write(append([]byte(corpus), '\n')); err != nil {
		return err
	}
	client.Close()
	if err := <-routerDone; err != nil {
		return err
	}
	wg.Wait()

	wantBank, wantShop := 0, 0
	for _, s := range services {
		if xmlrpc.ServiceDestination(s) == 0 {
			wantBank++
		} else {
			wantShop++
		}
	}
	fmt.Printf("generated %d messages\n", messages)
	fmt.Printf("bank sink     received %d (expected %d)\n", sinkCounts[0], wantBank)
	fmt.Printf("shopping sink received %d (expected %d)\n", sinkCounts[1], wantShop)
	if int(sinkCounts[0]) != wantBank || int(sinkCounts[1]) != wantShop {
		return fmt.Errorf("demo routing mismatch")
	}
	fmt.Println("demo OK: every message reached the server its content selects")
	return nil
}
