// Command cfg2vhdl is the paper's automatic hardware generator as a CLI:
// it reads a grammar and emits the complete structural VHDL for the token
// tagger, optionally with the synthesis estimate for a table 1 device.
//
// Usage:
//
//	cfg2vhdl -builtin xmlrpc -entity xmlrpc_tagger -o tagger.vhd
//	cfg2vhdl -grammar my.y -device virtex4 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"cfgtag"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "grammar file in the Lex/Yacc-style format")
		builtin     = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		entity      = flag.String("entity", "cfg_tagger", "VHDL entity name")
		outFile     = flag.String("o", "", "output file (default stdout)")
		device      = flag.String("device", "virtex4", "device for -stats: virtex4 or virtexe")
		stats       = flag.Bool("stats", false, "print the synthesis estimate to stderr")
		selftest    = flag.Int("selftest", 0, "cross-check the generated hardware against the software engine on N random sentences before emitting")
	)
	flag.Parse()

	engine, err := load(*grammarFile, *builtin)
	if err != nil {
		fail(err)
	}
	if *selftest > 0 {
		n, err := engine.SelfTest(1, *selftest)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "selftest: %d sentences verified on both datapaths\n", n)
	}
	src, err := engine.VHDL(*entity)
	if err != nil {
		fail(err)
	}
	if *outFile == "" {
		fmt.Print(src)
	} else if err := os.WriteFile(*outFile, []byte(src), 0o644); err != nil {
		fail(err)
	}

	if *stats {
		dev := cfgtag.Virtex4LX200
		if *device == "virtexe" {
			dev = cfgtag.VirtexE2000
		}
		rep, err := engine.Synthesize(dev)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, rep)
		fmt.Fprint(os.Stderr, rep.BreakdownString())
	}
}

func load(grammarFile, builtin string) (*cfgtag.Engine, error) {
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return cfgtag.Compile(grammarFile, string(src))
	case builtin == "xmlrpc":
		return cfgtag.Compile("xml-rpc", cfgtag.XMLRPCSource)
	case builtin == "ifthenelse":
		return cfgtag.Compile("if-then-else", cfgtag.IfThenElseSource)
	case builtin == "parens":
		return cfgtag.Compile("balanced-parens", cfgtag.BalancedParensSource)
	default:
		return nil, fmt.Errorf("need -grammar FILE or -builtin {xmlrpc,ifthenelse,parens}")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cfg2vhdl:", err)
	os.Exit(1)
}
