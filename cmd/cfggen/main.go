// Command cfggen generates test corpora: random conforming sentences of a
// grammar (via grammar-derivation sampling) or realistic XML-RPC message
// streams (figure 14 or full wire dialect). The output feeds cfgtagger,
// xmlrouter and the benchmark harness.
//
// Usage:
//
//	cfggen -builtin ifthenelse -n 100 > corpus.txt
//	cfggen -xmlrpc -n 500 -seed 7 -value-tags > traffic.txt
//	cfggen -grammar my.y -n 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/workload"
	"cfgtag/internal/xmlrpc"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "grammar file")
		builtin     = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		xml         = flag.Bool("xmlrpc", false, "generate realistic XML-RPC messages instead of grammar samples")
		valueTags   = flag.Bool("value-tags", false, "with -xmlrpc: real wire format (<value> wrappers)")
		compact     = flag.Bool("compact", false, "with -xmlrpc: no whitespace between tokens")
		n           = flag.Int("n", 10, "number of sentences/messages")
		seed        = flag.Int64("seed", 1, "random seed")
		maxDepth    = flag.Int("max-depth", 0, "derivation depth bound (grammar sampling)")
	)
	flag.Parse()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *xml {
		gen := xmlrpc.NewGenerator(*seed, xmlrpc.Options{ValueTags: *valueTags, Compact: *compact})
		for i := 0; i < *n; i++ {
			msg, _ := gen.Message()
			fmt.Fprintln(out, msg)
		}
		return
	}

	g, err := loadGrammar(*grammarFile, *builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfggen:", err)
		os.Exit(1)
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfggen:", err)
		os.Exit(1)
	}
	gen := workload.NewGenerator(spec, *seed, workload.SentenceOptions{MaxDepth: *maxDepth})
	for i := 0; i < *n; i++ {
		text, _ := gen.Sentence()
		out.Write(text)
		out.WriteByte('\n')
	}
}

func loadGrammar(grammarFile, builtin string) (*grammar.Grammar, error) {
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return grammar.Parse(grammarFile, string(src))
	case builtin == "xmlrpc":
		return grammar.XMLRPC(), nil
	case builtin == "ifthenelse":
		return grammar.IfThenElse(), nil
	case builtin == "parens":
		return grammar.BalancedParens(), nil
	default:
		return nil, fmt.Errorf("need -grammar FILE, -builtin NAME, or -xmlrpc")
	}
}
