// Command cfggen generates grammar artifacts: random conforming sentences
// (via grammar-derivation sampling), realistic XML-RPC message streams
// (figure 14 or full wire dialect), or — with -gen-go — a self-contained
// ahead-of-time compiled Go tagger package, the software analogue of the
// VHDL the paper synthesizes. Corpora feed cfgtagger, xmlrouter and the
// benchmark harness; generated packages are checked against the live
// determinizer by the CI codegen gate.
//
// Usage:
//
//	cfggen -builtin ifthenelse -n 100 > corpus.txt
//	cfggen -xmlrpc -n 500 -seed 7 -value-tags > traffic.txt
//	cfggen -grammar my.y -n 20
//	cfggen -gen-go -grammar my.y -free-running -package mytagger -o tagger.go
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cfgtag/internal/aot"
	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
	"cfgtag/internal/xmlrpc"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "grammar file")
		builtin     = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		xml         = flag.Bool("xmlrpc", false, "generate realistic XML-RPC messages instead of grammar samples")
		valueTags   = flag.Bool("value-tags", false, "with -xmlrpc: real wire format (<value> wrappers)")
		compact     = flag.Bool("compact", false, "with -xmlrpc: no whitespace between tokens")
		n           = flag.Int("n", 10, "number of sentences/messages")
		seed        = flag.Int64("seed", 1, "random seed")
		maxDepth    = flag.Int("max-depth", 0, "derivation depth bound (grammar sampling)")
		genGo       = flag.Bool("gen-go", false, "emit a self-contained AOT-compiled Go tagger package instead of a corpus")
		pkgName     = flag.String("package", "", "with -gen-go: generated package name")
		outFile     = flag.String("o", "", "with -gen-go: output file (default stdout)")
		freeRunning = flag.Bool("free-running", false, "with -gen-go: compile with free-running start (continuous streams)")
		maxStates   = flag.Int("max-states", 0, "with -gen-go: offline determinization state budget (0 = default)")
	)
	flag.Parse()

	if *genGo {
		if err := runGenGo(*grammarFile, *builtin, *pkgName, *outFile, *freeRunning, *maxStates); err != nil {
			fmt.Fprintln(os.Stderr, "cfggen:", err)
			os.Exit(1)
		}
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *xml {
		gen := xmlrpc.NewGenerator(*seed, xmlrpc.Options{ValueTags: *valueTags, Compact: *compact})
		for i := 0; i < *n; i++ {
			msg, _ := gen.Message()
			fmt.Fprintln(out, msg)
		}
		return
	}

	g, err := loadGrammar(*grammarFile, *builtin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfggen:", err)
		os.Exit(1)
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfggen:", err)
		os.Exit(1)
	}
	gen := workload.NewGenerator(spec, *seed, workload.SentenceOptions{MaxDepth: *maxDepth})
	for i := 0; i < *n; i++ {
		text, _ := gen.Sentence()
		out.Write(text)
		out.WriteByte('\n')
	}
}

// runGenGo determinizes the grammar offline and writes the generated
// self-contained tagger package, reporting the compile stats on stderr.
func runGenGo(grammarFile, builtin, pkgName, outFile string, freeRunning bool, maxStates int) error {
	if pkgName == "" {
		return fmt.Errorf("-gen-go needs -package NAME")
	}
	g, err := loadGrammar(grammarFile, builtin)
	if err != nil {
		return err
	}
	spec, err := core.Compile(g, core.Options{FreeRunningStart: freeRunning})
	if err != nil {
		return err
	}
	det, err := stream.Determinize(spec, stream.DetConfig{MaxStates: maxStates})
	if err != nil {
		return err
	}
	src, err := aot.GenGo(det, aot.GenOptions{Package: pkgName, Grammar: g.Name})
	if err != nil {
		return err
	}
	st := det.Stats
	fmt.Fprintf(os.Stderr, "cfggen: %s: %d states, %d classes, %d table bytes, compiled in %v\n",
		g.Name, st.States, st.Classes, st.TableBytes, st.Duration)
	if outFile == "" {
		_, err = os.Stdout.Write(src)
		return err
	}
	return os.WriteFile(outFile, src, 0o644)
}

func loadGrammar(grammarFile, builtin string) (*grammar.Grammar, error) {
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return grammar.Parse(grammarFile, string(src))
	case builtin == "xmlrpc":
		return grammar.XMLRPC(), nil
	case builtin == "ifthenelse":
		return grammar.IfThenElse(), nil
	case builtin == "parens":
		return grammar.BalancedParens(), nil
	default:
		return nil, fmt.Errorf("need -grammar FILE, -builtin NAME, or -xmlrpc")
	}
}
