// Command fpxtap is the section 5.2 FPX story end to end: it reads a pcap
// capture of raw-IP packets (or generates one), reassembles the TCP flows,
// and routes the XML-RPC messages each flow carries through the figure 12
// content-based router, printing per-flow and per-port tallies.
//
// Usage:
//
//	fpxtap -gen traffic.pcap -messages 50   # synthesize a capture
//	fpxtap -in traffic.pcap                 # tap and route it
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cfgtag/internal/fpx"
	"cfgtag/internal/router"
	"cfgtag/internal/xmlrpc"
)

func main() {
	var (
		in       = flag.String("in", "", "pcap capture to tap (linktype RAW IP)")
		gen      = flag.String("gen", "", "write a synthetic capture to this file instead of tapping")
		messages = flag.Int("messages", 50, "messages per flow when generating")
		flows    = flag.Int("flows", 3, "TCP flows when generating")
		seed     = flag.Int64("seed", 1, "generator seed")
		mss      = flag.Int("mss", 1400, "segment size when generating")
	)
	flag.Parse()
	switch {
	case *gen != "":
		if err := generate(*gen, *flows, *messages, *seed, *mss); err != nil {
			fail(err)
		}
	case *in != "":
		if err := tap(*in); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -in FILE or -gen FILE"))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpxtap:", err)
	os.Exit(1)
}

func generate(path string, flows, messages int, seed int64, mss int) error {
	var packets [][]byte
	for f := 0; f < flows; f++ {
		key := fpx.FlowKey{
			Src: [4]byte{10, 0, 0, byte(1 + f)}, Dst: [4]byte{10, 0, 1, 1},
			SrcPort: uint16(40000 + f), DstPort: 8700,
		}
		g := xmlrpc.NewGenerator(seed+int64(f), xmlrpc.Options{})
		corpus, _ := g.Corpus(messages)
		packets = append(packets, fpx.Segmentize(key, uint32(1000*f+1), []byte(corpus+"\n"), mss)...)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := fpx.WritePcap(file, packets); err != nil {
		return err
	}
	fmt.Printf("fpxtap: wrote %d packets (%d flows × %d messages) to %s\n",
		len(packets), flows, messages, path)
	return nil
}

func tap(path string) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	packets, err := fpx.ReadPcap(file)
	if err != nil {
		return err
	}

	perPort := map[int]int{}
	perFlow := map[fpx.FlowKey]int{}
	sp := fpx.NewSplitter()
	sp.NewFlow = func(key fpx.FlowKey) io.WriteCloser {
		r, err := router.New(router.FigureTwelve(), -1)
		if err != nil {
			fail(err)
		}
		r.OnRoute = func(port int, service string, message []byte) {
			perPort[port]++
			perFlow[key]++
		}
		return r
	}
	for i, pkt := range packets {
		if err := sp.Process(pkt); err != nil {
			fmt.Fprintf(os.Stderr, "fpxtap: packet %d: %v\n", i, err)
		}
	}
	if err := sp.CloseAll(); err != nil {
		return err
	}

	st := sp.Stats()
	fmt.Printf("packets %d, flows %d, payload bytes %d (out-of-order %d, dup %d)\n",
		st.Packets, st.Flows, st.Delivered, st.OutOfOrder, st.Duplicates)
	for key, nmsg := range perFlow {
		fmt.Printf("  flow %-34s %4d messages\n", key, nmsg)
	}
	fmt.Printf("routed: bank=%d shopping=%d unknown=%d\n", perPort[0], perPort[1], perPort[-1])
	return nil
}
