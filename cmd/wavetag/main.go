// Command wavetag simulates the generated tagger hardware over an input
// and writes a VCD waveform of the top-level ports (plus, optionally, the
// pending latches) for inspection in GTKWave — the debugging view a
// hardware engineer would use on the paper's design.
//
// Usage:
//
//	wavetag -builtin ifthenelse -text "if true then go" -o wave.vcd
//	wavetag -grammar my.y -in packet.bin -held -o wave.vcd
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"cfgtag/internal/core"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/sim"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "grammar file")
		builtin     = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		text        = flag.String("text", "", "input text (alternative to -in)")
		inFile      = flag.String("in", "", "input file")
		outFile     = flag.String("o", "", "VCD output file (default stdout)")
		held        = flag.Bool("held", false, "also trace the per-instance pending latches")
	)
	flag.Parse()
	if err := run(*grammarFile, *builtin, *text, *inFile, *outFile, *held); err != nil {
		fmt.Fprintln(os.Stderr, "wavetag:", err)
		os.Exit(1)
	}
}

func run(grammarFile, builtin, text, inFile, outFile string, held bool) error {
	g, err := loadGrammar(grammarFile, builtin)
	if err != nil {
		return err
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return err
	}
	d, err := hwgen.Generate(spec, hwgen.Options{})
	if err != nil {
		return err
	}
	sm, err := sim.New(d.Netlist)
	if err != nil {
		return err
	}

	input := []byte(text)
	if inFile != "" {
		input, err = os.ReadFile(inFile)
		if err != nil {
			return err
		}
	}
	if len(input) == 0 {
		return fmt.Errorf("no input: use -text or -in")
	}

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	signals := sim.DefaultSignals(d.Netlist)
	if held {
		signals = append(signals, sim.LabeledSignals(d.Netlist, "wire/held")...)
	}
	tr := sim.NewTracer(sm, w, "cfg_tagger", signals)
	for c := 0; c <= len(input)+d.EncoderLatency; c++ {
		var b byte
		eof := c >= len(input)
		if !eof {
			b = input[c]
		}
		for i := 0; i < 8; i++ {
			sm.SetInputWire(d.DataInputs[i], b&(1<<i) != 0)
		}
		sm.SetInputWire(d.EOF, eof)
		sm.Step()
		tr.Sample()
	}
	if err := tr.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wavetag: %d cycles, %d signals\n", len(input)+d.EncoderLatency+1, len(signals))
	return nil
}

func loadGrammar(grammarFile, builtin string) (*grammar.Grammar, error) {
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return grammar.Parse(grammarFile, string(src))
	case builtin == "xmlrpc":
		return grammar.XMLRPC(), nil
	case builtin == "ifthenelse":
		return grammar.IfThenElse(), nil
	case builtin == "parens":
		return grammar.BalancedParens(), nil
	default:
		return nil, fmt.Errorf("need -grammar FILE or -builtin {xmlrpc,ifthenelse,parens}")
	}
}
