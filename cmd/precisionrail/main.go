// Command precisionrail measures the FSA over-approximation against the
// exact-language Earley oracle and emits the precision-rail JSON document:
// per-grammar and per-class false-positive tag rates over the workload
// generators, at both the full and the smoke trial counts.
//
//	precisionrail                       print the document to stdout
//	precisionrail -out FILE             write it to FILE
//	precisionrail -trials N -seed S     override the measurement knobs
//	precisionrail -grammars DIR         corpus directory of .y files
//
// The run is deterministic in (seed, trials): the same source tree always
// emits the same document, so scripts/precision.sh can gate on rate drift
// with a small tolerance. Oracle violations (the oracle rejecting a
// generated sentence, or claiming a tag the stream path lacks) exit
// nonzero — those are correctness bugs, not precision regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cfgtag/internal/grammar"
	"cfgtag/internal/runtime"
)

// document is the PRECISION_baseline.json schema ("cfgtag-precision/1").
type document struct {
	Schema        string                   `json:"schema"`
	Seed          int64                    `json:"seed"`
	Trials        int                      `json:"trials"`
	SmokeTrials   int                      `json:"smoke_trials"`
	TolerancePP   float64                  `json:"tolerance_pp"`
	Grammars      []runtime.Precision      `json:"grammars"`
	Classes       []runtime.ClassPrecision `json:"classes"`
	SmokeGrammars []runtime.Precision      `json:"smoke_grammars"`
	SmokeClasses  []runtime.ClassPrecision `json:"smoke_classes"`
}

// corpusClasses names the grammar class of each committed corpus file;
// unknown files measure under the catch-all "corpus" class.
var corpusClasses = map[string]string{
	"arith":    "ambiguous",
	"dangling": "ambiguous",
	"rightrec": "right-recursive",
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON document here (default stdout)")
		trials    = flag.Int("trials", 48, "sentences per grammar for the full measurement")
		smoke     = flag.Int("smoke-trials", 12, "sentences per grammar for the smoke measurement")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		tolerance = flag.Float64("tolerance", 2.0, "gate tolerance in percentage points, recorded in the document")
		dir       = flag.String("grammars", "testdata/grammars", "corpus directory of .y grammars")
	)
	flag.Parse()

	grammars, err := railGrammars(*dir)
	if err != nil {
		fail(err)
	}
	doc := document{
		Schema:      "cfgtag-precision/1",
		Seed:        *seed,
		Trials:      *trials,
		SmokeTrials: *smoke,
		TolerancePP: *tolerance,
	}
	if doc.Grammars, err = measure(grammars, *seed, *trials); err != nil {
		fail(err)
	}
	doc.Classes = runtime.AggregateByClass(doc.Grammars)
	if doc.SmokeGrammars, err = measure(grammars, *seed, *smoke); err != nil {
		fail(err)
	}
	doc.SmokeClasses = runtime.AggregateByClass(doc.SmokeGrammars)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
}

type railGrammar struct {
	g     *grammar.Grammar
	class string
}

// railGrammars lists the measured grammars: the paper's builtins (LL(1)),
// the section 5.1 natural-language fragment, and every .y file in the
// corpus directory, sorted for determinism.
func railGrammars(dir string) ([]railGrammar, error) {
	out := []railGrammar{
		{grammar.BalancedParens(), "ll1"},
		{grammar.IfThenElse(), "ll1"},
		{grammar.XMLRPC(), "ll1"},
		{grammar.English(), "natlang"},
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.y"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(f), ".y")
		g, err := grammar.Parse(name, string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		class, ok := corpusClasses[name]
		if !ok {
			class = "corpus"
		}
		out = append(out, railGrammar{g, class})
	}
	return out, nil
}

// measure runs every rail grammar at one trial count. Per-grammar seeds
// are offset by position so grammars draw independent sentence streams.
func measure(gs []railGrammar, seed int64, trials int) ([]runtime.Precision, error) {
	out := make([]runtime.Precision, 0, len(gs))
	for i, rg := range gs {
		p, err := runtime.MeasurePrecision(rg.g, rg.class, seed+int64(i)*1000003, trials)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "precisionrail:", err)
	os.Exit(1)
}
