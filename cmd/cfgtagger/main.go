// Command cfgtagger compiles a grammar into a token-tagging engine and
// tags a byte stream, printing one line per detection: offset, token
// index, terminal and grammatical context. It is the command-line face of
// the paper's architecture.
//
// Usage:
//
//	cfgtagger -builtin xmlrpc -in message.xml
//	cfgtagger -grammar my.y -free < stream.bin
//	cfgtagger -builtin ifthenelse -show-wiring
//	cfgtagger -builtin ifthenelse -backend gates -in program.txt
//
// -backend selects the execution path: "stream" (the bit-parallel software
// engine, default), "dfa" (the lazily-determinized cached compilation of
// the same engine — identical output, highest throughput), "gates"
// (cycle-accurate simulation of the generated netlist) or "parser" (the
// LL(1) baseline, which also prints the accept/reject verdict).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"cfgtag"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "grammar file in the Lex/Yacc-style format")
		builtin     = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		inFile      = flag.String("in", "", "input file (default stdin)")
		free        = flag.Bool("free", false, "free-running start: find sentences anywhere in the stream")
		lexemes     = flag.Bool("lexemes", false, "recover and print matched text (buffers the whole input)")
		showWiring  = flag.Bool("show-wiring", false, "print the tokenizer wiring (figure 11) and exit")
		showFollow  = flag.Bool("show-follow", false, "print the per-terminal Follow table (figure 10) and exit")
		lint        = flag.Bool("lint", false, "print grammar design warnings and exit")
		dot         = flag.Bool("dot", false, "print the tokenizer wiring as Graphviz DOT (figure 11) and exit")
		backend     = flag.String("backend", "stream", "execution path: stream, dfa, gates or parser")
	)
	flag.Parse()

	engine, err := load(*grammarFile, *builtin, *free)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfgtagger:", err)
		os.Exit(1)
	}
	if *lint {
		warns := engine.Lint()
		for _, w := range warns {
			fmt.Println("warning:", w)
		}
		fmt.Printf("%d warnings\n", len(warns))
		return
	}
	if *showFollow {
		fmt.Print(engine.FollowTable())
		return
	}
	if *showWiring {
		fmt.Print(engine.Wiring())
		return
	}
	if *dot {
		fmt.Print(engine.Spec().DOT())
		return
	}

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	b, err := engine.NewBackend(cfgtag.BackendKind(*backend))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfgtagger:", err)
		os.Exit(1)
	}

	if *lexemes {
		data, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		if err := b.Feed(data); err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		verdict := b.Close()
		ms := b.Matches()
		for _, m := range ms {
			end := ""
			if m.SentenceEnd {
				end = "  [sentence-end]"
			}
			fmt.Fprintf(out, "%8d  idx=%-4d %-20q %-14s %q%s\n",
				m.End, m.Index, m.Term, m.Context, engine.Lexeme(data, m), end)
		}
		fmt.Fprintf(out, "%d tokens tagged\n", len(ms))
		report(out, b, verdict)
		return
	}

	count := 0
	emit := func() {
		for _, m := range b.Matches() {
			count++
			end := ""
			if m.SentenceEnd {
				end = "  [sentence-end]"
			}
			fmt.Fprintf(out, "%8d  idx=%-4d %-20q %s%s\n", m.End, m.Index, m.Term, m.Context, end)
		}
	}
	buf := make([]byte, 64<<10)
	r := bufio.NewReader(in)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := b.Feed(buf[:n]); err != nil {
				fmt.Fprintln(os.Stderr, "cfgtagger:", err)
				os.Exit(1)
			}
			emit()
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", rerr)
			os.Exit(1)
		}
	}
	verdict := b.Close()
	emit()
	fmt.Fprintf(out, "%d tokens tagged\n", count)
	report(out, b, verdict)
}

// report prints the backend's verdict and recovery/collision counters when
// they carry information (the parser path rejects; the stream path counts
// section 5.2 recoveries).
func report(out io.Writer, b *cfgtag.Backend, verdict error) {
	if verdict != nil {
		fmt.Fprintf(out, "verdict: reject (%v)\n", verdict)
	} else if b.Kind() == cfgtag.ParserBackend {
		fmt.Fprintln(out, "verdict: accept")
	}
	if c := b.Counters(); c.Recoveries > 0 || c.Collisions > 0 {
		fmt.Fprintf(out, "%d recoveries, %d index collisions\n", c.Recoveries, c.Collisions)
	}
	if c := b.Counters(); b.Kind() == cfgtag.DFABackend {
		fmt.Fprintf(out, "dfa cache: %d hits, %d misses, %d resets\n",
			c.CacheHits, c.CacheMisses, c.CacheResets)
	}
}

func load(grammarFile, builtin string, free bool) (*cfgtag.Engine, error) {
	var opts []cfgtag.Option
	if free {
		opts = append(opts, cfgtag.FreeRunningStart())
	}
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return cfgtag.Compile(grammarFile, string(src), opts...)
	case builtin == "xmlrpc":
		return cfgtag.Compile("xml-rpc", cfgtag.XMLRPCSource, opts...)
	case builtin == "ifthenelse":
		return cfgtag.Compile("if-then-else", cfgtag.IfThenElseSource, opts...)
	case builtin == "parens":
		return cfgtag.Compile("balanced-parens", cfgtag.BalancedParensSource, opts...)
	default:
		return nil, fmt.Errorf("need -grammar FILE or -builtin {xmlrpc,ifthenelse,parens}")
	}
}
