// Command cfgtagger compiles a grammar into a token-tagging engine and
// tags a byte stream, printing one line per detection: offset, token
// index, terminal and grammatical context. It is the command-line face of
// the paper's architecture.
//
// Usage:
//
//	cfgtagger -builtin xmlrpc -in message.xml
//	cfgtagger -grammar my.y -free < stream.bin
//	cfgtagger -builtin ifthenelse -show-wiring
//	cfgtagger -builtin ifthenelse -backend gates -in program.txt
//
// -backend selects the execution path: "stream" (the bit-parallel software
// engine, default), "dfa" (the lazily-determinized cached compilation of
// the same engine — identical output, highest throughput), "aot" (the
// ahead-of-time determinized compilation — the whole DFA is built to
// closure up front into flat tables, so tagging pays no cache lookups and
// can never hit a runtime state-budget reset; fails fast if the grammar
// does not close within the state budget), "gates" (cycle-accurate
// simulation of the generated netlist), "parser" (the LL(1) baseline,
// which also prints the accept/reject verdict) or "earley" (the
// exact-language oracle — any grammar class, tags unioned over all
// derivations, accept/reject verdict printed like the parser's).
//
// -shards N switches to pipeline mode: every input line becomes its own
// keyed stream, tagged concurrently on N shards and printed in per-stream
// order. -max-streams and -quarantine expose the pipeline's resource
// governance, and -chaos injects backend faults (errors, panics, latency)
// to demonstrate the fault-tolerance layer — faulted streams end with an
// error, the rest are unaffected, and the fault counters are printed:
//
//	cfgtagger -builtin ifthenelse -free -shards 4 -chaos 0.05 -in lines.txt
//
// -config FILE switches to multi-tenant platform mode: the JSON file
// declares one pipeline per tenant (grammar, backend, shards, quotas — see
// cfgtag.PlatformConfig), every input line "tenant|payload" is tagged as
// its own stream of that tenant, and SIGHUP re-reads the config and
// hot-swaps changed grammars with zero downtime — live streams finish on
// the grammar that started them:
//
//	cfgtagger -config platform.json -in lines.txt
//
// -listen / -listen-http add network stream inputs on top of -config:
// TCP connections speak the CFGTAG/1 protocol (one dedicated stream per
// connection, or many keyed streams multiplexed over one), HTTP serves
// one stream per chunked POST body plus /metrics and /healthz, and tag
// events are written back to each client as newline-delimited text.
// SIGHUP reloads grammars with zero downtime; SIGTERM drains gracefully
// (stop accepting, flush every live stream's final batch, close):
//
//	cfgtagger -config platform.json -listen :7733 -listen-http :7734
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cfgtag"
	"cfgtag/internal/faultinject"
	"cfgtag/internal/runtime"
)

func main() {
	var (
		grammarFile  = flag.String("grammar", "", "grammar file in the Lex/Yacc-style format")
		builtin      = flag.String("builtin", "", "built-in grammar: xmlrpc, ifthenelse or parens")
		inFile       = flag.String("in", "", "input file (default stdin)")
		free         = flag.Bool("free", false, "free-running start: find sentences anywhere in the stream")
		lexemes      = flag.Bool("lexemes", false, "recover and print matched text (buffers the whole input)")
		showWiring   = flag.Bool("show-wiring", false, "print the tokenizer wiring (figure 11) and exit")
		showFollow   = flag.Bool("show-follow", false, "print the per-terminal Follow table (figure 10) and exit")
		lint         = flag.Bool("lint", false, "print grammar design warnings and exit")
		dot          = flag.Bool("dot", false, "print the tokenizer wiring as Graphviz DOT (figure 11) and exit")
		backend      = flag.String("backend", "stream", "execution path: stream, dfa, aot, gates, parser or earley")
		shards       = flag.Int("shards", 0, "pipeline mode: tag each input line as its own stream on this many shards")
		maxStreams   = flag.Int("max-streams", 0, "pipeline mode: cap live streams per shard, evicting the least-recently-fed at the cap (0 = unlimited)")
		quarantine   = flag.Duration("quarantine", 0, "pipeline mode: how long a faulted stream's key is rejected (0 = 30s default, negative = disabled)")
		chaos        = flag.Float64("chaos", 0, "pipeline mode: inject backend faults at this per-chunk rate (errors, panics, latency) to exercise the fault-tolerance layer")
		chaosSeed    = flag.Int64("chaos-seed", 1, "fault-injection RNG seed")
		batchBytes   = flag.Int("batch-bytes", 0, "pipeline mode: coalesce Sends into per-shard batches of this many bytes (0 = 64 KiB default, negative = dispatch every Send immediately)")
		sinkWorkers  = flag.Int("sink-workers", 0, "pipeline mode: deliver batches on this many workers (0 or 1 = single serialized sink)")
		sendTimeout  = flag.Duration("send-timeout", 0, "pipeline mode: shed Sends instead of blocking when a shard queue is full — 0 blocks, negative sheds immediately, positive waits at most this long")
		feedDeadline = flag.Duration("feed-deadline", 0, "pipeline mode: watchdog deadline per backend call; a slower call ends its stream as stalled (0 = disabled)")
		memBudget    = flag.Int64("mem-budget", 0, "pipeline mode: estimated live-memory budget in bytes (arenas, stream buffers, charts); Sends over budget are shed (0 = unlimited)")
		configFile   = flag.String("config", "", "platform mode: multi-tenant JSON config; input lines are 'tenant|payload', SIGHUP hot-swaps changed grammars")
		listenTCP    = flag.String("listen", "", "serve mode: accept CFGTAG/1 TCP stream connections on this address (requires -config)")
		listenHTTP   = flag.String("listen-http", "", "serve mode: accept HTTP chunked-POST streams on this address, plus /metrics and /healthz (requires -config)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "serve mode: how long SIGTERM waits for live streams before force-flushing them")
	)
	flag.Parse()

	if *listenTCP != "" || *listenHTTP != "" {
		if *configFile == "" {
			fmt.Fprintln(os.Stderr, "cfgtagger: -listen/-listen-http need -config FILE")
			os.Exit(1)
		}
		if err := runServe(*configFile, *listenTCP, *listenHTTP, *drainWait); err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		return
	}

	if *configFile != "" {
		in := io.Reader(os.Stdin)
		if *inFile != "" {
			f, err := os.Open(*inFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cfgtagger:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		out := bufio.NewWriter(os.Stdout)
		err := runPlatform(*configFile, in, out)
		out.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		return
	}

	engine, err := load(*grammarFile, *builtin, *free)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfgtagger:", err)
		os.Exit(1)
	}
	if *lint {
		warns := engine.Lint()
		for _, w := range warns {
			fmt.Println("warning:", w)
		}
		fmt.Printf("%d warnings\n", len(warns))
		return
	}
	if *showFollow {
		fmt.Print(engine.FollowTable())
		return
	}
	if *showWiring {
		fmt.Print(engine.Wiring())
		return
	}
	if *dot {
		fmt.Print(engine.Spec().DOT())
		return
	}

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *shards > 0 {
		err := runPipeline(engine, *backend, in, out, pipelineOptions{
			shards:       *shards,
			maxStreams:   *maxStreams,
			quarantine:   *quarantine,
			chaos:        *chaos,
			chaosSeed:    *chaosSeed,
			batchBytes:   *batchBytes,
			sinkWorkers:  *sinkWorkers,
			sendTimeout:  *sendTimeout,
			feedDeadline: *feedDeadline,
			memBudget:    *memBudget,
		})
		if err != nil {
			out.Flush()
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		return
	}

	b, err := engine.NewBackend(cfgtag.BackendKind(*backend))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfgtagger:", err)
		os.Exit(1)
	}

	if *lexemes {
		data, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		if err := b.Feed(data); err != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", err)
			os.Exit(1)
		}
		verdict := b.Close()
		ms := b.Matches()
		for _, m := range ms {
			end := ""
			if m.SentenceEnd {
				end = "  [sentence-end]"
			}
			fmt.Fprintf(out, "%8d  idx=%-4d %-20q %-14s %q%s\n",
				m.End, m.Index, m.Term, m.Context, engine.Lexeme(data, m), end)
		}
		fmt.Fprintf(out, "%d tokens tagged\n", len(ms))
		report(out, b, verdict)
		return
	}

	count := 0
	emit := func() {
		for _, m := range b.Matches() {
			count++
			end := ""
			if m.SentenceEnd {
				end = "  [sentence-end]"
			}
			fmt.Fprintf(out, "%8d  idx=%-4d %-20q %s%s\n", m.End, m.Index, m.Term, m.Context, end)
		}
	}
	buf := make([]byte, 64<<10)
	r := bufio.NewReader(in)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := b.Feed(buf[:n]); err != nil {
				fmt.Fprintln(os.Stderr, "cfgtagger:", err)
				os.Exit(1)
			}
			emit()
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "cfgtagger:", rerr)
			os.Exit(1)
		}
	}
	verdict := b.Close()
	emit()
	fmt.Fprintf(out, "%d tokens tagged\n", count)
	report(out, b, verdict)
}

// report prints the backend's verdict and recovery/collision counters when
// they carry information (the parser path rejects; the stream path counts
// section 5.2 recoveries).
func report(out io.Writer, b *cfgtag.Backend, verdict error) {
	if verdict != nil {
		fmt.Fprintf(out, "verdict: reject (%v)\n", verdict)
	} else if b.Kind() == cfgtag.ParserBackend || b.Kind() == cfgtag.EarleyBackend {
		fmt.Fprintln(out, "verdict: accept")
	}
	if c := b.Counters(); c.Recoveries > 0 || c.Collisions > 0 {
		fmt.Fprintf(out, "%d recoveries, %d index collisions\n", c.Recoveries, c.Collisions)
	}
	if c := b.Counters(); b.Kind() == cfgtag.DFABackend {
		fmt.Fprintf(out, "dfa cache: %d hits, %d misses, %d resets\n",
			c.CacheHits, c.CacheMisses, c.CacheResets)
	}
	if b.Kind() == cfgtag.AOTBackend {
		s := b.CompileStats()
		fmt.Fprintf(out, "aot tables: %d states, %d classes, %d bytes, compiled in %v\n",
			s.States, s.Classes, s.TableBytes, s.Duration)
	}
}

// pipelineOptions bundles the pipeline-mode flags.
type pipelineOptions struct {
	shards       int
	maxStreams   int
	quarantine   time.Duration
	chaos        float64
	chaosSeed    int64
	batchBytes   int
	sinkWorkers  int
	sendTimeout  time.Duration
	feedDeadline time.Duration
	memBudget    int64
}

// runPipeline tags every input line as its own keyed stream on a sharded
// pipeline, optionally wrapped in fault injection, and prints per-stream
// results in delivery order plus the pipeline's fault counters.
func runPipeline(engine *cfgtag.Engine, backend string, in io.Reader, out io.Writer, opts pipelineOptions) error {
	spec := engine.Spec()
	var factory runtime.Factory
	switch backend {
	case "stream", "":
		factory = runtime.TaggerFactory(spec)
	case "dfa":
		factory = runtime.DFAFactory(spec, 0)
	case "aot":
		var err error
		if factory, err = runtime.AOTFactory(spec, 0); err != nil {
			return err
		}
	case "gates":
		var err error
		if factory, err = runtime.GateFactory(spec); err != nil {
			return err
		}
	case "parser":
		var err error
		if factory, err = runtime.ParserFactory(spec); err != nil {
			return err
		}
	case "earley":
		var err error
		if factory, err = runtime.EarleyFactory(spec); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown backend kind %q", backend)
	}
	if opts.chaos > 0 {
		factory = faultinject.Factory(factory, faultinject.Config{
			Seed:      opts.chaosSeed,
			ErrorRate: opts.chaos,
			PanicRate: opts.chaos / 2,
			SlowRate:  opts.chaos,
		})
	}

	var mc runtime.MetricCounters
	var sinkMu sync.Mutex // serializes printing when sink workers run concurrently
	tagged, faulted := 0, 0
	sink := runtime.SinkFunc(func(b *runtime.Batch) error {
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for _, m := range b.Tags {
			tagged++
			inst := spec.Instances[m.InstanceID]
			fmt.Fprintf(out, "%-10s %8d  idx=%-4d %-20q %s\n",
				b.Key, m.End, inst.Index, inst.Term, inst.Context(spec.Grammar))
		}
		if b.Err != nil {
			faulted++
			fmt.Fprintf(out, "%-10s fault: %v\n", b.Key, b.Err)
		}
		return nil
	})
	var mem *runtime.MemGauge
	if opts.memBudget > 0 {
		mem = &runtime.MemGauge{}
	}
	p, err := runtime.NewPipeline(runtime.Config{
		Shards:       opts.shards,
		Factory:      factory,
		Hooks:        mc.Hooks(),
		MaxStreams:   opts.maxStreams,
		Quarantine:   opts.quarantine,
		BatchBytes:   opts.batchBytes,
		SinkWorkers:  opts.sinkWorkers,
		SendTimeout:  opts.sendTimeout,
		FeedDeadline: opts.feedDeadline,
		Mem:          mem,
	}, sink)
	if err != nil {
		return err
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, shed := 0, 0
	for sc.Scan() {
		key := fmt.Sprintf("line-%d", lines)
		lines++
		// The registry enforces memory budgets at Send for tenants; the
		// flat pipeline mode applies the same admission check here.
		if opts.memBudget > 0 && mem.Load() >= opts.memBudget {
			shed++
			fmt.Fprintf(out, "%-10s shed: over %d-byte memory budget\n", key, opts.memBudget)
			continue
		}
		// A fault can quarantine the key between Send and CloseStream;
		// the stream already ended with an error batch, so carry on.
		if err := p.Send(key, sc.Bytes()); err != nil {
			if errors.Is(err, runtime.ErrQuarantined) {
				continue
			}
			if errors.Is(err, runtime.ErrOverloaded) {
				shed++
				fmt.Fprintf(out, "%-10s shed: %v\n", key, err)
				continue
			}
			p.Close()
			return err
		}
		if err := p.CloseStream(key); err != nil && !errors.Is(err, runtime.ErrQuarantined) {
			p.Close()
			return err
		}
	}
	if err := sc.Err(); err != nil {
		p.Close()
		return err
	}
	if err := p.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "%d streams, %d tokens tagged, %d stream faults", lines, tagged, faulted)
	if shed > 0 {
		fmt.Fprintf(out, ", %d shed", shed)
	}
	fmt.Fprintln(out)
	if f := mc.Faults(); f.PanicsRecovered+f.StreamsQuarantined+f.StreamsEvicted+f.SinkRetries+f.DeadLetters > 0 {
		fmt.Fprintf(out, "faults: %d panics recovered, %d quarantined, %d evicted, %d sink retries, %d dead-lettered\n",
			f.PanicsRecovered, f.StreamsQuarantined, f.StreamsEvicted, f.SinkRetries, f.DeadLetters)
	}
	if f := mc.Faults(); f.SendsShed+f.WatchdogTrips+f.ResourceExhausted > 0 {
		fmt.Fprintf(out, "overload: %d sends shed, %d watchdog trips, %d resource exhausted\n",
			f.SendsShed, f.WatchdogTrips, f.ResourceExhausted)
	}
	return nil
}

func load(grammarFile, builtin string, free bool) (*cfgtag.Engine, error) {
	var opts []cfgtag.Option
	if free {
		opts = append(opts, cfgtag.FreeRunningStart())
	}
	switch {
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		return cfgtag.Compile(grammarFile, string(src), opts...)
	case builtin == "xmlrpc":
		return cfgtag.Compile("xml-rpc", cfgtag.XMLRPCSource, opts...)
	case builtin == "ifthenelse":
		return cfgtag.Compile("if-then-else", cfgtag.IfThenElseSource, opts...)
	case builtin == "parens":
		return cfgtag.Compile("balanced-parens", cfgtag.BalancedParensSource, opts...)
	default:
		return nil, fmt.Errorf("need -grammar FILE or -builtin {xmlrpc,ifthenelse,parens}")
	}
}

// runPlatform is -config mode: a multi-tenant platform built from the JSON
// config, with each input line "tenant|payload" tagged as its own stream
// of that tenant. SIGHUP re-reads the config and hot-swaps any tenant
// whose grammar changed — a zero-downtime reload; streams alive across the
// swap finish on the grammar that started them.
func runPlatform(path string, in io.Reader, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cfg, err := cfgtag.ParsePlatformConfig(data)
	if err != nil {
		return err
	}

	var mu sync.Mutex // serializes printing across tenant sinks
	tagged := make(map[string]int)
	faulted := 0
	deliver := func(tenant string, b *cfgtag.TagBatch) error {
		mu.Lock()
		defer mu.Unlock()
		for _, m := range b.Tags {
			tagged[tenant]++
			fmt.Fprintf(out, "%-10s %-10s %8d  idx=%-4d %-20q %s\n",
				tenant, b.Stream, m.End, m.Index, m.Term, m.Context)
		}
		if b.Err != nil {
			faulted++
			fmt.Fprintf(out, "%-10s %-10s fault: %v\n", tenant, b.Stream, b.Err)
		}
		return nil
	}
	p, err := cfgtag.NewPlatform(cfg, deliver)
	if err != nil {
		return err
	}

	// Remember each tenant's applied grammar source so SIGHUP only swaps
	// tenants whose grammar actually changed.
	applied := make(map[string]string)
	for _, t := range cfg.Tenants {
		src, err := tenantSource(t)
		if err != nil {
			p.Close()
			return err
		}
		applied[t.Name] = src
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			reloadPlatform(p, path, applied, &mu)
		}
	}()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineNo := lines
		lines++
		tenant, payload, ok := bytes.Cut(line, []byte("|"))
		if !ok {
			fmt.Fprintf(os.Stderr, "cfgtagger: line %d: want 'tenant|payload'\n", lineNo)
			continue
		}
		key := fmt.Sprintf("line-%d", lineNo)
		name := string(tenant)
		if err := p.Send(name, key, payload); err != nil {
			if recoverable(err) {
				fmt.Fprintf(os.Stderr, "cfgtagger: line %d: %v\n", lineNo, err)
				continue
			}
			p.Close()
			return err
		}
		if err := p.CloseStream(name, key); err != nil && !recoverable(err) {
			p.Close()
			return err
		}
	}
	if err := sc.Err(); err != nil {
		p.Close()
		return err
	}
	tenants := p.Tenants()
	if err := p.Close(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(out, "%d lines, %d stream faults\n", lines, faulted)
	for _, name := range tenants {
		fmt.Fprintf(out, "tenant %-10s %d tokens tagged\n", name, tagged[name])
	}
	return nil
}

// recoverable reports Send/CloseStream errors that end one line's stream
// without ending the run: admission-control rejections and quarantines.
func recoverable(err error) bool {
	return errors.Is(err, cfgtag.ErrQuotaExceeded) ||
		errors.Is(err, cfgtag.ErrUnknownTenant) ||
		errors.Is(err, runtime.ErrQuarantined)
}

// tenantSource resolves a tenant's grammar text (inline or from file).
func tenantSource(t cfgtag.TenantDef) (string, error) {
	if t.Grammar != "" {
		return t.Grammar, nil
	}
	b, err := os.ReadFile(t.GrammarFile)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// reloadPlatform is the SIGHUP handler body: re-read the config, and for
// every running tenant whose grammar source changed, publish the new
// grammar as a new factory version. Tenants added or removed in the file
// are reported but need a restart; a config or compile error leaves the
// running platform untouched.
func reloadPlatform(p *cfgtag.Platform, path string, applied map[string]string, mu *sync.Mutex) {
	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cfgtagger: reload: "+format+"\n", args...)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		warn("%v", err)
		return
	}
	cfg, err := cfgtag.ParsePlatformConfig(data)
	if err != nil {
		warn("%v", err)
		return
	}
	if err := cfg.Validate(); err != nil {
		warn("%v", err)
		return
	}
	running := make(map[string]bool)
	for _, name := range p.Tenants() {
		running[name] = true
	}
	seen := make(map[string]bool)
	for _, t := range cfg.Tenants {
		seen[t.Name] = true
		if !running[t.Name] {
			warn("tenant %q is new; restart to add tenants", t.Name)
			continue
		}
		src, err := tenantSource(t)
		if err != nil {
			warn("%v", err)
			continue
		}
		mu.Lock()
		prev := applied[t.Name]
		mu.Unlock()
		if src == prev {
			continue
		}
		v, err := p.Reload(t.Name, src)
		if err != nil {
			warn("tenant %q: %v", t.Name, err)
			continue
		}
		mu.Lock()
		applied[t.Name] = src
		mu.Unlock()
		warn("tenant %q reloaded as version %d", t.Name, v)
	}
	for name := range running {
		if !seen[name] {
			warn("tenant %q removed from config; restart to drop tenants", name)
		}
	}
}
