package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cfgtag"
	"cfgtag/internal/serve"
)

// runServe is -listen mode: the multi-tenant platform from the JSON
// config behind network stream inputs. TCP connections speak the
// CFGTAG/1 protocol (dedicated streams or key-multiplexed); HTTP serves
// chunked POST streams plus /metrics and /healthz. SIGHUP hot-swaps
// changed grammars exactly as in -config pipe mode; SIGTERM/SIGINT
// drains gracefully — stop accepting, flush every live stream's final
// batch to its client, then close the listeners.
func runServe(path, tcpAddr, httpAddr string, drain time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cfg, err := cfgtag.ParsePlatformConfig(data)
	if err != nil {
		return err
	}

	srv := serve.NewServer()
	p, err := cfgtag.NewPlatform(cfg, srv.Deliver)
	if err != nil {
		return err
	}
	srv.Bind(p)
	srv.SetStats(p)

	if tcpAddr != "" {
		ln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			p.Close()
			return err
		}
		srv.AddInput(serve.NewTCPInput(ln, serve.TCPOptions{}))
		fmt.Fprintln(os.Stderr, "cfgtagger: listening (tcp)", ln.Addr())
	}
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			p.Close()
			return err
		}
		srv.AddInput(serve.NewHTTPInput(ln))
		fmt.Fprintln(os.Stderr, "cfgtagger: listening (http)", ln.Addr())
	}

	applied := make(map[string]string)
	for _, t := range cfg.Tenants {
		src, err := tenantSource(t)
		if err != nil {
			p.Close()
			return err
		}
		applied[t.Name] = src
	}
	var mu sync.Mutex
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			reloadPlatform(p, path, applied, &mu)
		}
	}()

	if err := srv.Start(); err != nil {
		p.Close()
		return err
	}

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(term)
	<-term
	fmt.Fprintln(os.Stderr, "cfgtagger: draining...")
	if err := srv.Shutdown(drain); err != nil {
		if errors.Is(err, serve.ErrDrainTimeout) {
			fmt.Fprintf(os.Stderr, "cfgtagger: drain deadline (%v) hit; open streams were force-flushed\n", drain)
		}
		return err
	}
	fmt.Fprintln(os.Stderr, "cfgtagger: drained clean")
	return nil
}
