// Command benchtab regenerates the paper's evaluation artifacts:
//
//	benchtab -table1      table 1 (device utilization across grammar sizes)
//	benchtab -fig15       figure 15 (frequency vs pattern bytes, Virtex-4)
//	benchtab -breakdown   per-group LUT split for the XML-RPC design
//	benchtab -ablations   design-choice ablations (encoder, sharing, wiring)
//
// Without flags it prints everything. Absolute LUT counts run above the
// paper's (our mapper is a greedy packer, Synplify is not); the shape —
// which rows win, the LUTs/byte decline, the frequency curve — is the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cfgtag/internal/core"
	"cfgtag/internal/fpga"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/workload"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate table 1")
		fig15     = flag.Bool("fig15", false, "regenerate figure 15")
		breakdown = flag.Bool("breakdown", false, "LUT breakdown of the XML-RPC design")
		ablations = flag.Bool("ablations", false, "design-choice ablations")
		csvDir    = flag.String("csv", "", "also write table1.csv and fig15.csv into this directory")
	)
	flag.Parse()
	all := !*table1 && !*fig15 && !*breakdown && !*ablations

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fail(err)
		}
	}

	if *table1 || all {
		if err := printTable1(); err != nil {
			fail(err)
		}
	}
	if *fig15 || all {
		if err := printFig15(); err != nil {
			fail(err)
		}
	}
	if *breakdown || all {
		if err := printBreakdown(); err != nil {
			fail(err)
		}
	}
	if *ablations || all {
		if err := printAblations(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

// writeCSVs emits the table 1 and figure 15 series as CSV for plotting.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	t1, err := os.Create(filepath.Join(dir, "table1.csv"))
	if err != nil {
		return err
	}
	defer t1.Close()
	fmt.Fprintln(t1, "device,freq_mhz,bw_gbps,pattern_bytes,luts,luts_per_byte")
	ve, err := synth(1, fpga.VirtexE2000, hwgen.Options{})
	if err != nil {
		return err
	}
	writeCSVRow(t1, ve)
	for _, n := range []int{1, 2, 4, 7, 10} {
		r, err := synth(n, fpga.Virtex4LX200, hwgen.Options{})
		if err != nil {
			return err
		}
		writeCSVRow(t1, r)
	}

	f15, err := os.Create(filepath.Join(dir, "fig15.csv"))
	if err != nil {
		return err
	}
	defer f15.Close()
	fmt.Fprintln(f15, "pattern_bytes,freq_mhz,luts_per_byte,max_fanout")
	for n := 1; n <= 10; n++ {
		r, err := synth(n, fpga.Virtex4LX200, hwgen.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(f15, "%d,%.1f,%.3f,%d\n", r.PatternBytes, r.FrequencyMHz, r.LUTsPerByte(), r.MaxFanout)
	}
	fmt.Fprintf(os.Stderr, "benchtab: wrote %s and %s\n",
		filepath.Join(dir, "table1.csv"), filepath.Join(dir, "fig15.csv"))
	return nil
}

func writeCSVRow(w io.Writer, r fpga.Report) {
	fmt.Fprintf(w, "%s,%.1f,%.3f,%d,%d,%.3f\n",
		r.Device.Name, r.FrequencyMHz, r.BandwidthGbps(), r.PatternBytes, r.LUTs, r.LUTsPerByte())
}

// synth builds and maps the design for one scaled grammar.
func synth(scale int, dev fpga.Device, hopts hwgen.Options) (fpga.Report, error) {
	g, err := workload.Scale(grammar.XMLRPC(), scale)
	if err != nil {
		return fpga.Report{}, err
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		return fpga.Report{}, err
	}
	d, err := hwgen.Generate(spec, hopts)
	if err != nil {
		return fpga.Report{}, err
	}
	return fpga.Synthesize(d.Netlist, dev, spec.PatternBytes())
}

func printTable1() error {
	fmt.Println("== Table 1: device utilization for XML token taggers of varying sizes ==")
	var reports []fpga.Report
	ve, err := synth(1, fpga.VirtexE2000, hwgen.Options{})
	if err != nil {
		return err
	}
	reports = append(reports, ve)
	for _, n := range []int{1, 2, 4, 7, 10} {
		r, err := synth(n, fpga.Virtex4LX200, hwgen.Options{})
		if err != nil {
			return err
		}
		reports = append(reports, r)
	}
	fmt.Print(fpga.FormatTable(reports))
	fmt.Println()
	return nil
}

func printFig15() error {
	fmt.Println("== Figure 15: frequency vs pattern bytes (Virtex-4 LX200) ==")
	fmt.Printf("%8s %10s %10s %12s\n", "Bytes", "Freq(MHz)", "LUT/Byte", "MaxFanout")
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		r, err := synth(n, fpga.Virtex4LX200, hwgen.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%8d %10.0f %10.2f %12d\n", r.PatternBytes, r.FrequencyMHz, r.LUTsPerByte(), r.MaxFanout)
	}
	fmt.Println()
	return nil
}

func printBreakdown() error {
	fmt.Println("== LUT breakdown, XML-RPC design (Virtex-4) ==")
	r, err := synth(1, fpga.Virtex4LX200, hwgen.Options{})
	if err != nil {
		return err
	}
	fmt.Print(r.BreakdownString())
	fmt.Printf("total    %6d LUTs, %d registers\n\n", r.LUTs, r.Registers)
	return nil
}

func printAblations() error {
	fmt.Println("== Ablations (XML-RPC design, Virtex-4) ==")
	base, err := synth(1, fpga.Virtex4LX200, hwgen.Options{})
	if err != nil {
		return err
	}
	naive, err := synth(1, fpga.Virtex4LX200, hwgen.Options{NaiveEncoder: true})
	if err != nil {
		return err
	}
	private, err := synth(1, fpga.Virtex4LX200, hwgen.Options{NoDecoderSharing: true})
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %6d LUTs  depth %2d  -> %4.0f MHz pipelined\n",
		"pipelined OR-tree encoder", base.LUTs, base.LogicDepth, base.FrequencyMHz)
	fmt.Printf("%-28s %6d LUTs  depth %2d  -> %4.0f MHz at that depth\n",
		"naive chain encoder", naive.LUTs, naive.LogicDepth, 1000/naive.PeriodNs(naive.LogicDepth))
	fmt.Printf("%-28s %6d LUTs (decoder sharing off: +%d)\n",
		"private decoders", private.LUTs, private.LUTs-base.LUTs)

	// Wiring ablation: what the syntactic control flow saves vs enabling
	// every tokenizer all the time.
	gAll, err := core.Compile(grammar.XMLRPC(), core.Options{AllEnabled: true})
	if err != nil {
		return err
	}
	dAll, err := hwgen.Generate(gAll, hwgen.Options{})
	if err != nil {
		return err
	}
	rAll, err := fpga.Synthesize(dAll.Netlist, fpga.Virtex4LX200, gAll.PatternBytes())
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %6d LUTs (all tokenizers always enabled)\n", "no follow wiring", rAll.LUTs)
	fmt.Println()
	return nil
}
