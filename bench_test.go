// Benchmark harness regenerating the paper's evaluation (section 4.3).
//
// Table 1 / figure 15 benches re-run the full generator + technology
// mapper + timing model and attach the paper's metrics (MHz, Gbps, LUTs,
// LUTs/byte) to the benchmark output via ReportMetric, so
//
//	go test -bench Table1 -benchmem
//	go test -bench Figure15
//
// prints the rows the paper reports. Throughput benches compare the
// engines the reproduction provides: the bit-parallel software tagger, the
// gate-level simulation, the LL(1) lexer+parser baseline and the
// Aho–Corasick naive matcher, all over the same generated XML-RPC corpus.
// Ablation benches quantify the design choices called out in DESIGN.md.
package cfgtag

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"cfgtag/internal/aot"
	"cfgtag/internal/core"
	"cfgtag/internal/fpga"
	"cfgtag/internal/fpx"
	"cfgtag/internal/grammar"
	"cfgtag/internal/hwgen"
	"cfgtag/internal/lexer"
	"cfgtag/internal/match"
	"cfgtag/internal/parser"
	"cfgtag/internal/router"
	"cfgtag/internal/runtime"
	"cfgtag/internal/stream"
	"cfgtag/internal/workload"
	"cfgtag/internal/xmlrpc"
)

// synthesize runs grammar scaling → spec → netlist → mapping once.
func synthesize(b *testing.B, scale int, dev fpga.Device, hopts hwgen.Options) fpga.Report {
	b.Helper()
	g, err := workload.Scale(grammar.XMLRPC(), scale)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := core.Compile(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d, err := hwgen.Generate(spec, hopts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fpga.Synthesize(d.Netlist, dev, spec.PatternBytes())
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func reportRow(b *testing.B, rep fpga.Report) {
	b.ReportMetric(rep.FrequencyMHz, "MHz")
	b.ReportMetric(rep.BandwidthGbps(), "Gbps")
	b.ReportMetric(float64(rep.LUTs), "LUTs")
	b.ReportMetric(float64(rep.PatternBytes), "patternB")
	b.ReportMetric(rep.LUTsPerByte(), "LUTs/B")
}

// BenchmarkTable1 regenerates every row of table 1: the VirtexE-2000 at
// ~300 pattern bytes and the Virtex-4 LX200 at the five grammar sizes.
func BenchmarkTable1(b *testing.B) {
	rows := []struct {
		name  string
		scale int
		dev   fpga.Device
	}{
		{"VirtexE2000/300B", 1, fpga.VirtexE2000},
		{"Virtex4LX200/300B", 1, fpga.Virtex4LX200},
		{"Virtex4LX200/600B", 2, fpga.Virtex4LX200},
		{"Virtex4LX200/1200B", 4, fpga.Virtex4LX200},
		{"Virtex4LX200/2100B", 7, fpga.Virtex4LX200},
		{"Virtex4LX200/3000B", 10, fpga.Virtex4LX200},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			var rep fpga.Report
			for i := 0; i < b.N; i++ {
				rep = synthesize(b, row.scale, row.dev, hwgen.Options{})
			}
			reportRow(b, rep)
		})
	}
}

// BenchmarkFigure15 sweeps the frequency-vs-pattern-bytes curve on the
// Virtex-4 LX200 at a finer grain than table 1.
func BenchmarkFigure15(b *testing.B) {
	for scale := 1; scale <= 10; scale++ {
		b.Run(fmt.Sprintf("x%02d", scale), func(b *testing.B) {
			var rep fpga.Report
			for i := 0; i < b.N; i++ {
				rep = synthesize(b, scale, fpga.Virtex4LX200, hwgen.Options{})
			}
			reportRow(b, rep)
			b.ReportMetric(float64(rep.MaxFanout), "fanout")
		})
	}
}

// corpus builds a deterministic XML-RPC message stream shared by the
// throughput benches.
func corpus(b *testing.B, messages int) []byte {
	b.Helper()
	gen := xmlrpc.NewGenerator(424242, xmlrpc.Options{})
	text, _ := gen.Corpus(messages)
	return []byte(text)
}

// BenchmarkStream measures the bit-parallel NFA engine — the software
// stand-in for the 1-byte-per-cycle hardware — over XML-RPC traffic.
// (Formerly BenchmarkSoftwareTagger; the name pairs with BenchmarkDFA and
// the scripts/bench.sh regression rail.)
func BenchmarkStream(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	tg := stream.NewTagger(spec)
	data := corpus(b, 200)
	count := 0
	tg.OnMatch = func(stream.Match) { count++ }
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Reset()
		tg.Write(data)
		tg.Close()
	}
	if count == 0 {
		b.Fatal("tagger found nothing")
	}
}

// BenchmarkDFA measures the lazy-DFA compiled backend on the same workload
// as BenchmarkStream. The cache warms on the first iteration; steady state
// is one table lookup per byte, and the cache-stat metrics report how much
// of the run was served from cache.
func BenchmarkDFA(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	d := stream.NewDFA(spec, stream.DFAConfig{})
	data := corpus(b, 200)
	count := 0
	d.OnMatch = func(stream.Match) { count++ }
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset()
		d.Write(data)
		d.Close()
	}
	if count == 0 {
		b.Fatal("dfa found nothing")
	}
	hits, misses, resets := d.CacheStats()
	b.ReportMetric(float64(d.CacheStates()), "states")
	b.ReportMetric(float64(misses), "misses")
	b.ReportMetric(float64(resets), "resets")
	_ = hits
}

// BenchmarkDFASparse measures the DFA's skip-ahead acceleration on
// delimiter-sparse traffic: real XML-RPC sentences separated by long
// whitespace runs, the shape where most bytes leave the DFA state
// unchanged. The accel sub-bench runs the default configuration (run
// bytes burned with memchr-style scans); noaccel disables the fill-time
// acceleration plans and walks the same input byte by byte, isolating the
// win. BenchmarkDFA (dense traffic) is the companion number.
func BenchmarkDFASparse(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	// 20 messages separated by 16 KiB space runs: ~97% of the input is
	// delimiter filler.
	gen := xmlrpc.NewGenerator(424242, xmlrpc.Options{})
	pad := make([]byte, 16<<10)
	for i := range pad {
		pad[i] = ' '
	}
	var data []byte
	for i := 0; i < 20; i++ {
		m, _ := gen.Message()
		data = append(data, m...)
		data = append(data, pad...)
	}
	for _, cfg := range []struct {
		name string
		conf stream.DFAConfig
	}{
		{"accel", stream.DFAConfig{}},
		{"noaccel", stream.DFAConfig{NoAccel: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := stream.NewDFA(spec, cfg.conf)
			count := 0
			d.OnMatch = func(stream.Match) { count++ }
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Reset()
				d.Write(data)
				d.Close()
			}
			if count == 0 {
				b.Fatal("dfa found nothing")
			}
		})
	}
}

// BenchmarkAOT measures the ahead-of-time compiled tables on the dense
// workload of BenchmarkDFA: the whole DFA is determinized offline, so the
// hot loop is a flat-slice transition walk with no cache lookups, no
// atomic stat counters and no reset risk. The delta against BenchmarkDFA
// is the price of laziness on traffic that touches the whole automaton;
// the compile-time metrics show what the offline build costs.
func BenchmarkAOT(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := aot.Compile(spec, aot.Config{})
	if err != nil {
		b.Fatal(err)
	}
	r := prog.NewRunner()
	data := corpus(b, 200)
	count := 0
	r.OnMatch = func(stream.Match) { count++ }
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset()
		r.Write(data)
		r.Close()
	}
	if count == 0 {
		b.Fatal("aot found nothing")
	}
	st := prog.Stats()
	b.ReportMetric(float64(st.States), "states")
	b.ReportMetric(float64(st.TableBytes)/1024, "tableKB")
	b.ReportMetric(float64(st.Duration.Microseconds()), "compile-µs")
}

// BenchmarkAOTSparse is BenchmarkDFASparse on the ahead-of-time tables:
// the determinizer carries the DFA's fill-time skip-ahead plans into the
// flat encoding, so run-heavy traffic burns in memchr-style scans exactly
// as the lazy path does. accel vs noaccel isolates that win on the AOT
// side.
func BenchmarkAOTSparse(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	gen := xmlrpc.NewGenerator(424242, xmlrpc.Options{})
	pad := make([]byte, 16<<10)
	for i := range pad {
		pad[i] = ' '
	}
	var data []byte
	for i := 0; i < 20; i++ {
		m, _ := gen.Message()
		data = append(data, m...)
		data = append(data, pad...)
	}
	for _, cfg := range []struct {
		name string
		conf aot.Config
	}{
		{"accel", aot.Config{}},
		{"noaccel", aot.Config{NoAccel: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			prog, err := aot.Compile(spec, cfg.conf)
			if err != nil {
				b.Fatal(err)
			}
			r := prog.NewRunner()
			count := 0
			r.OnMatch = func(stream.Match) { count++ }
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset()
				r.Write(data)
				r.Close()
			}
			if count == 0 {
				b.Fatal("aot found nothing")
			}
		})
	}
}

// BenchmarkParallelTagger scales the software engine across cores with a
// tagger pool (one message stream per borrowed tagger) — the software
// analogue of replicating the hardware engine.
func BenchmarkParallelTagger(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	pool := stream.NewPool(spec, 0)
	data := corpus(b, 200)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ms := pool.Tag(data); len(ms) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// BenchmarkShardedPipeline measures the sharded runtime on its fastest
// backend (the lazy DFA) against the same engine run serially, over a
// genuinely multi-stream workload: M interleaved XML-RPC streams fed in
// 4 KiB chunks round-robin, the arrival order a multiplexed network
// source would produce. The baseline tags the M streams one after another
// on a single DFA with no dispatch layer; the shards-N/streams-M grid
// dispatches the same chunks through the batched pipeline. Aggregate
// throughput is bytes across all streams per wall-clock second, so the
// grid exposes both the dispatch overhead (shards-1 vs baseline) and the
// scaling GOMAXPROCS allows — on a single-core box the win comes from
// batched dispatch amortizing per-chunk costs, not parallelism.
func BenchmarkShardedPipeline(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(b, 200)
	const chunk = 4 << 10

	b.Run("baseline-dfa-serial", func(b *testing.B) {
		const streams = 8
		d := stream.NewDFA(spec, stream.DFAConfig{})
		count := 0
		d.OnMatch = func(stream.Match) { count++ }
		b.SetBytes(int64(streams * len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count = 0
			for s := 0; s < streams; s++ {
				d.Reset()
				for lo := 0; lo < len(data); lo += chunk {
					hi := lo + chunk
					if hi > len(data) {
						hi = len(data)
					}
					d.Write(data[lo:hi])
				}
				d.Close()
			}
		}
		if count == 0 {
			b.Fatal("dfa found nothing")
		}
	})

	// The dfa column keeps the historical sub-benchmark names; the aot
	// column runs the identical grid on the ahead-of-time tables, so the
	// per-point delta is the dispatch-layer view of lazy vs offline
	// compilation (the program is compiled once, outside the timed region,
	// and shared by every stream's runner).
	aotFactory, err := runtime.AOTFactory(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	backends := []struct {
		prefix  string
		factory runtime.Factory
	}{
		{"", runtime.DFAFactory(spec, 0)},
		{"aot-", aotFactory},
	}
	for _, be := range backends {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, streams := range []int{8, 32} {
				b.Run(fmt.Sprintf("%sshards-%d/streams-%d", be.prefix, shards, streams), func(b *testing.B) {
					keys := make([]string, streams)
					for s := range keys {
						keys[s] = fmt.Sprintf("stream-%d", s)
					}
					// One long-lived pipeline for the whole run: streams stay
					// open across iterations, so the per-stream DFA caches warm
					// once and the bench measures the steady state. Close —
					// which drains every queued chunk — stays inside the timed
					// region so all b.N iterations' bytes are fully processed.
					tags := 0
					p, err := runtime.NewPipeline(
						runtime.Config{Shards: shards, Queue: 256, Factory: be.factory},
						runtime.SinkFunc(func(bt *runtime.Batch) error { tags += len(bt.Tags); return nil }),
					)
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(streams * len(data)))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						// Interleave chunks across streams, as a multiplexed
						// source would deliver them.
						for lo := 0; lo < len(data); lo += chunk {
							hi := lo + chunk
							if hi > len(data) {
								hi = len(data)
							}
							for _, key := range keys {
								if err := p.Send(key, data[lo:hi]); err != nil {
									b.Fatal(err)
								}
							}
						}
					}
					if err := p.Close(); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if tags == 0 {
						b.Fatal("pipeline delivered no tags")
					}
				})
			}
		}
	}
}

// BenchmarkPipelineOverload measures the admission-control layer. The
// admission-on point runs the exact BenchmarkShardedPipeline workload
// through bounded-wait admission (a generous SendTimeout): the producer
// outruns the DFA shard, so admission waits on the drain signal exactly
// where blocking mode waits on the queue — zero Sends shed, and the
// delta against admission-off is the cost of the watermark check and
// wait loop, which must be noise. The overload-2x point throttles the
// sink so the offered load is about twice what it drains and lets
// immediate shed mode reject the excess: throughput is *offered* bytes
// per second (accepted work plus cheap rejections), and the shed
// fraction is reported per op — a pipeline that sheds the excess while
// continuing to drain at capacity is the contract under overload.
func BenchmarkPipelineOverload(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(b, 200)
	const chunk = 4 << 10
	const streams = 8

	run := func(b *testing.B, cfg runtime.Config, sink runtime.Sink) (sent, shed int64) {
		keys := make([]string, streams)
		for s := range keys {
			keys[s] = fmt.Sprintf("stream-%d", s)
		}
		p, err := runtime.NewPipeline(cfg, sink)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(streams * len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(data); lo += chunk {
				hi := lo + chunk
				if hi > len(data) {
					hi = len(data)
				}
				for _, key := range keys {
					sent++
					if err := p.Send(key, data[lo:hi]); err != nil {
						if errors.Is(err, runtime.ErrOverloaded) {
							shed++
							continue
						}
						b.Fatal(err)
					}
				}
			}
		}
		// Close drains every accepted chunk inside the timed region, so
		// throughput covers fully processed bytes.
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		return sent, shed
	}

	tags := 0
	fastSink := runtime.SinkFunc(func(bt *runtime.Batch) error { tags += len(bt.Tags); return nil })

	b.Run("admission-off", func(b *testing.B) {
		tags = 0
		run(b, runtime.Config{Shards: 2, Queue: 256, Factory: runtime.DFAFactory(spec, 0)}, fastSink)
		if tags == 0 {
			b.Fatal("pipeline delivered no tags")
		}
	})
	b.Run("admission-on", func(b *testing.B) {
		tags = 0
		_, shed := run(b, runtime.Config{
			Shards: 2, Queue: 256, SendTimeout: time.Minute,
			Factory: runtime.DFAFactory(spec, 0),
		}, fastSink)
		if tags == 0 {
			b.Fatal("pipeline delivered no tags")
		}
		if shed != 0 {
			b.Fatalf("unloaded pipeline shed %d sends", shed)
		}
	})
	b.Run("overload-2x", func(b *testing.B) {
		// Coalescing is off so one sink call drains one chunk, making
		// capacity exactly one chunk per sinkDelay. The producer paces
		// itself to offer one chunk per sinkDelay/2 — twice capacity by
		// construction, machine-independent — and immediate shed mode
		// rejects the excess. The interesting outputs are shed-frac
		// (should sit near 0.5) and accepted bytes per op, not ns/op
		// (which the pacing dominates).
		const sinkDelay = time.Millisecond
		var accepted atomic.Int64
		slowSink := runtime.SinkFunc(func(bt *runtime.Batch) error {
			accepted.Add(int64(len(bt.Data)))
			time.Sleep(sinkDelay)
			return nil
		})
		keys := make([]string, streams)
		for s := range keys {
			keys[s] = fmt.Sprintf("stream-%d", s)
		}
		p, err := runtime.NewPipeline(runtime.Config{
			Shards: 2, Queue: 4, BatchBytes: -1, SendTimeout: -1,
			Factory: runtime.DFAFactory(spec, 0),
		}, slowSink)
		if err != nil {
			b.Fatal(err)
		}
		var sent, shed int64
		b.SetBytes(int64(streams * len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(data); lo += chunk {
				hi := lo + chunk
				if hi > len(data) {
					hi = len(data)
				}
				for _, key := range keys {
					sent++
					if err := p.Send(key, data[lo:hi]); err != nil {
						if errors.Is(err, runtime.ErrOverloaded) {
							shed++
							continue
						}
						b.Fatal(err)
					}
				}
				time.Sleep(time.Duration(streams) * sinkDelay / 2)
			}
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(shed)/float64(sent), "shed-frac")
		b.ReportMetric(float64(accepted.Load())/float64(b.N), "accepted-B/op")
	})
}

// BenchmarkTenantGrid measures the multi-tenant platform end to end: T
// tenants, each a sharded DFA pipeline behind the versioned registry,
// fed the same interleaved chunked workload as BenchmarkShardedPipeline.
// Every tenant compiles the same grammar, so the shared lazy-DFA cache
// fills once and all T×streams streams run off the published tables;
// aggregate throughput is bytes across all tenants per wall-clock
// second. tenants-1 vs BenchmarkShardedPipeline/shards-2/streams-8
// isolates the facade + registry dispatch overhead; the larger grid
// points show how aggregate throughput holds as tenants multiply on
// fixed cores.
func BenchmarkTenantGrid(b *testing.B) {
	data := corpus(b, 200)
	const chunk = 4 << 10
	const streamsPerTenant = 8
	// The dfa column keeps the historical names; the aot column runs the
	// same grid with every tenant on the ahead-of-time tables (each tenant
	// compiles its program once at platform build, so T tenants pay T
	// offline compiles outside the timed region).
	for _, be := range []struct{ prefix, backend string }{
		{"", "dfa"},
		{"aot-", "aot"},
	} {
		for _, tenants := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%stenants-%d/streams-%d", be.prefix, tenants, streamsPerTenant), func(b *testing.B) {
				cfg := PlatformConfig{}
				names := make([]string, tenants)
				for t := range names {
					names[t] = fmt.Sprintf("tenant-%d", t)
					cfg.Tenants = append(cfg.Tenants, TenantDef{
						Name:    names[t],
						Grammar: grammar.XMLRPCSrc,
						Options: []string{"free-running-start"},
						Backend: be.backend,
						Shards:  2,
						Queue:   256,
					})
				}
				// Tenant sinks run concurrently; the counter must be atomic.
				var tags atomic.Int64
				p, err := NewPlatform(&cfg, func(_ string, tb *TagBatch) error {
					tags.Add(int64(len(tb.Tags)))
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				keys := make([]string, streamsPerTenant)
				for s := range keys {
					keys[s] = fmt.Sprintf("stream-%d", s)
				}
				b.SetBytes(int64(tenants * streamsPerTenant * len(data)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < len(data); lo += chunk {
						hi := lo + chunk
						if hi > len(data) {
							hi = len(data)
						}
						for _, name := range names {
							for _, key := range keys {
								if err := p.Send(name, key, data[lo:hi]); err != nil {
									b.Fatal(err)
								}
							}
						}
					}
				}
				// Close drains every queued chunk, so all b.N iterations'
				// bytes are fully processed inside the timed region.
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if tags.Load() == 0 {
					b.Fatal("platform delivered no tags")
				}
			})
		}
	}
}

// BenchmarkGateSim measures the cycle-accurate gate-level simulation of
// the same design — the fidelity-over-speed end of the spectrum.
func BenchmarkGateSim(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	d, err := hwgen.Generate(spec, hwgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := hwgen.NewRunner(d)
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(b, 5)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := r.Run(data); len(ms) == 0 {
			b.Fatal("no detections")
		}
	}
}

// BenchmarkLL1Baseline measures the conventional software path: reference
// lexer + table-driven LL(1) predictive parse per message.
func BenchmarkLL1Baseline(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := parser.BuildTable(spec)
	if err != nil {
		b.Fatal(err)
	}
	gen := xmlrpc.NewGenerator(424242, xmlrpc.Options{})
	var msgs [][]byte
	total := 0
	for i := 0; i < 200; i++ {
		m, _ := gen.Message()
		msgs = append(msgs, []byte(m))
		total += len(m) + 1
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			if _, err := tbl.Parse(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkContextFreeLexer measures the plain longest-match scanner —
// tokenization without any syntactic narrowing.
func BenchmarkContextFreeLexer(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(b, 200)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lexer.ScanAll(spec, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveMatcher measures the context-free Aho–Corasick baseline
// over the literal token set (the deep-packet-inspection comparison).
func BenchmarkNaiveMatcher(b *testing.B) {
	g := grammar.XMLRPC()
	var pats []string
	for _, t := range g.Tokens {
		if t.Literal {
			pats = append(pats, t.Name)
		}
	}
	m, err := match.New(pats)
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(b, 200)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Count(data) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkRouter measures the full figure 12 pipeline: tagging + service
// recovery + message switching.
func BenchmarkRouter(b *testing.B) {
	data := corpus(b, 200)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := router.New(router.FigureTwelve(), -1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r.Write(data)
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		if r.Stats().Messages != 200 {
			b.Fatalf("routed %d", r.Stats().Messages)
		}
	}
}

// BenchmarkFalsePositives quantifies the section 1 motivation: how often
// the naive matcher fires on service keywords outside methodName, versus
// the context-gated tagger. Reported as metrics, not time.
func BenchmarkFalsePositives(b *testing.B) {
	// Traffic whose parameter strings frequently spell service names.
	gen := xmlrpc.NewGenerator(7, xmlrpc.Options{Service: "price"})
	var buf []byte
	realOccurrences := 0
	for i := 0; i < 100; i++ {
		m, _ := gen.Message()
		// Inject a decoy parameter containing a bank service name.
		decoy := "<param> <string>withdraw</string> </param> "
		m = m[:len(m)-len("</params> </methodCall>")] + decoy + "</params> </methodCall>"
		buf = append(buf, m...)
		buf = append(buf, '\n')
		realOccurrences++ // one real "price" per message
	}
	services := append(append([]string{}, xmlrpc.BankServices...), xmlrpc.ShoppingServices...)
	m, err := match.New(services)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{FreeRunningStart: true})
	if err != nil {
		b.Fatal(err)
	}
	var nameIDs []int
	for _, in := range spec.Instances {
		if in.Rule >= 0 && spec.Grammar.Rules[in.Rule].LHS == "methodName" && in.Term == "STRING" {
			nameIDs = append(nameIDs, in.ID)
		}
	}
	tg := stream.NewTagger(spec)

	var naive, contextual int
	for i := 0; i < b.N; i++ {
		naive = m.Count(buf)
		contextual = 0
		tg.Reset()
		tg.OnMatch = func(mt stream.Match) {
			for _, id := range nameIDs {
				if mt.InstanceID == id {
					contextual++
				}
			}
		}
		tg.Write(buf)
		tg.Close()
	}
	b.ReportMetric(float64(naive-realOccurrences), "naiveFP")
	b.ReportMetric(float64(contextual-realOccurrences), "taggerFP")
	if contextual != realOccurrences {
		b.Fatalf("tagger fired %d times, want %d", contextual, realOccurrences)
	}
	if naive <= realOccurrences {
		b.Fatalf("decoys did not trip the naive matcher (%d)", naive)
	}
}

// BenchmarkNIDSScale sweeps the section 1 motivation across signature-set
// sizes: a command protocol with N signatures, traffic whose LOG payloads
// frequently mention signature names harmlessly. The naive matcher's false
// positives grow with the decoy traffic; the context-wired tagger's stay
// at zero. Throughput of both engines is measured on the same corpus.
func BenchmarkNIDSScale(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		g, sigs := workload.SignatureGrammar(n)
		// Anchored start: the stream is one session, so command position
		// is defined by the wiring alone (free-running would re-arm the
		// signature tokenizers at every byte and fire on payloads too).
		spec, err := core.Compile(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		data, real := workload.SignatureCorpus(rng, sigs, 2000, 0.5)

		// Which instances are signature keywords in command position?
		sigInstance := make(map[int]bool)
		for _, in := range spec.Instances {
			if in.Term != "WORD" && in.Term != "LOG" {
				sigInstance[in.ID] = true
			}
		}
		m, err := match.New(sigs)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("tagger/%dsigs", n), func(b *testing.B) {
			tg := stream.NewTagger(spec)
			hits := 0
			tg.OnMatch = func(mt stream.Match) {
				if sigInstance[mt.InstanceID] {
					hits++
				}
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits = 0
				tg.Reset()
				tg.Write(data)
				tg.Close()
			}
			if hits != real {
				b.Fatalf("tagger hits %d, want %d real", hits, real)
			}
			b.ReportMetric(0, "falsePos")
		})
		b.Run(fmt.Sprintf("naive/%dsigs", n), func(b *testing.B) {
			hits := 0
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits = m.Count(data)
			}
			if hits <= real {
				b.Fatalf("naive hits %d; decoys missing (real %d)", hits, real)
			}
			b.ReportMetric(float64(hits-real), "falsePos")
		})
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

// BenchmarkAblationEncoder compares the pipelined OR-tree encoder with the
// naive combinational chain (section 3.4): same function, but the chain's
// logic depth wrecks the achievable clock.
func BenchmarkAblationEncoder(b *testing.B) {
	b.Run("pipelined-tree", func(b *testing.B) {
		var rep fpga.Report
		for i := 0; i < b.N; i++ {
			rep = synthesize(b, 1, fpga.Virtex4LX200, hwgen.Options{})
		}
		b.ReportMetric(float64(rep.LogicDepth), "depth")
		b.ReportMetric(rep.FrequencyMHz, "MHz")
	})
	b.Run("naive-chain", func(b *testing.B) {
		var rep fpga.Report
		for i := 0; i < b.N; i++ {
			rep = synthesize(b, 1, fpga.Virtex4LX200, hwgen.Options{NaiveEncoder: true})
		}
		b.ReportMetric(float64(rep.LogicDepth), "depth")
		b.ReportMetric(1000/rep.PeriodNs(rep.LogicDepth), "MHz")
	})
}

// BenchmarkAblationDecoderSharing quantifies the paper's LUT/byte
// observation: shared decoders amortize, private ones do not.
func BenchmarkAblationDecoderSharing(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		var rep fpga.Report
		for i := 0; i < b.N; i++ {
			rep = synthesize(b, 1, fpga.Virtex4LX200, hwgen.Options{})
		}
		b.ReportMetric(float64(rep.LUTs), "LUTs")
	})
	b.Run("private", func(b *testing.B) {
		var rep fpga.Report
		for i := 0; i < b.N; i++ {
			rep = synthesize(b, 1, fpga.Virtex4LX200, hwgen.Options{NoDecoderSharing: true})
		}
		b.ReportMetric(float64(rep.LUTs), "LUTs")
	})
}

// BenchmarkAblationWiring compares the follow-set wiring against enabling
// every tokenizer all the time: area and (more importantly) precision.
func BenchmarkAblationWiring(b *testing.B) {
	data := corpus(b, 50)
	run := func(b *testing.B, copts core.Options) int {
		spec, err := core.Compile(grammar.XMLRPC(), copts)
		if err != nil {
			b.Fatal(err)
		}
		tg := stream.NewTagger(spec)
		count := 0
		tg.OnMatch = func(stream.Match) { count++ }
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count = 0
			tg.Reset()
			tg.Write(data)
			tg.Close()
		}
		return count
	}
	var wired, unwired int
	b.Run("follow-wiring", func(b *testing.B) {
		wired = run(b, core.Options{FreeRunningStart: true})
		b.ReportMetric(float64(wired), "detections")
	})
	b.Run("all-enabled", func(b *testing.B) {
		unwired = run(b, core.Options{AllEnabled: true})
		b.ReportMetric(float64(unwired), "detections")
	})
}

// BenchmarkAblationLongestMatch shows the figure 7 lookahead suppressing
// per-cycle over-tagging on runs.
func BenchmarkAblationLongestMatch(b *testing.B) {
	data := corpus(b, 50)
	run := func(b *testing.B, copts core.Options) int {
		spec, err := core.Compile(grammar.XMLRPC(), copts)
		if err != nil {
			b.Fatal(err)
		}
		tg := stream.NewTagger(spec)
		count := 0
		tg.OnMatch = func(stream.Match) { count++ }
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count = 0
			tg.Reset()
			tg.Write(data)
			tg.Close()
		}
		return count
	}
	b.Run("lookahead", func(b *testing.B) {
		n := run(b, core.Options{FreeRunningStart: true})
		b.ReportMetric(float64(n), "detections")
	})
	b.Run("no-lookahead", func(b *testing.B) {
		n := run(b, core.Options{FreeRunningStart: true, NoLongestMatch: true})
		b.ReportMetric(float64(n), "detections")
	})
}

// BenchmarkAblationFanoutCap evaluates the section 4.3 improvement the
// paper proposes but does not build: replicating decoders to bound the
// decoded-wire fanout. On the ≈3000-byte grammar the baseline loses the
// clock to routing (316 MHz); capping recovers frequency for a small LUT
// overhead until some non-decoder net becomes critical.
func BenchmarkAblationFanoutCap(b *testing.B) {
	for _, cap := range []int{0, 256, 128, 64, 32} {
		b.Run(fmt.Sprintf("cap%03d", cap), func(b *testing.B) {
			var rep fpga.Report
			for i := 0; i < b.N; i++ {
				rep = synthesize(b, 10, fpga.Virtex4LX200, hwgen.Options{MaxFanout: cap})
			}
			b.ReportMetric(rep.FrequencyMHz, "MHz")
			b.ReportMetric(float64(rep.LUTs), "LUTs")
			b.ReportMetric(float64(rep.MaxFanout), "fanout")
		})
	}
}

// BenchmarkWideDatapath projects the section 5.2 datapath scaling ("32-bits
// or 64-bits per clock cycle") for the XML-RPC design.
func BenchmarkWideDatapath(b *testing.B) {
	base := synthesize(b, 1, fpga.Virtex4LX200, hwgen.Options{})
	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dB", lanes), func(b *testing.B) {
			var p fpga.WideProjection
			for i := 0; i < b.N; i++ {
				var err error
				p, err = fpga.ProjectWide(base, lanes)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.FrequencyMHz, "MHz")
			b.ReportMetric(p.BandwidthGbps(), "Gbps")
			b.ReportMetric(float64(p.LUTs), "LUTs")
		})
	}
}

// BenchmarkWide2Synthesis maps the actually-built 2-byte datapath (not the
// analytical projection): area and modeled clock for the XML-RPC design,
// with throughput at 2 bytes per cycle.
func BenchmarkWide2Synthesis(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var rep fpga.Report
	for i := 0; i < b.N; i++ {
		d, err := hwgen.GenerateWide2(spec, hwgen.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rep, err = fpga.Synthesize(d.Netlist, fpga.Virtex4LX200, spec.PatternBytes())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.FrequencyMHz, "MHz")
	b.ReportMetric(rep.FrequencyMHz*16/1000, "Gbps") // 2 bytes per cycle
	b.ReportMetric(float64(rep.LUTs), "LUTs")
}

// BenchmarkFPXPipeline measures the full packets-in, routed-messages-out
// path of the section 5.2 FPX integration: IPv4/TCP parsing, per-flow
// reassembly, tagging and content-based routing.
func BenchmarkFPXPipeline(b *testing.B) {
	gen := xmlrpc.NewGenerator(31, xmlrpc.Options{})
	corpusText, _ := gen.Corpus(100)
	key := fpx.FlowKey{
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 8700,
	}
	pkts := fpx.Segmentize(key, 1, []byte(corpusText+"\n"), 1400)
	total := 0
	for _, p := range pkts {
		total += len(p)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sp := fpx.NewSplitter()
		routed := 0
		sp.NewFlow = func(fpx.FlowKey) io.WriteCloser {
			r, err := router.New(router.FigureTwelve(), -1)
			if err != nil {
				b.Fatal(err)
			}
			r.OnRoute = func(int, string, []byte) { routed++ }
			return r
		}
		b.StartTimer()
		for _, p := range pkts {
			if err := sp.Process(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := sp.CloseAll(); err != nil {
			b.Fatal(err)
		}
		if routed != 100 {
			b.Fatalf("routed %d", routed)
		}
	}
}

// BenchmarkCompile measures end-to-end generator latency: grammar text to
// ready spec (the paper's "automatically generated" claim, timed).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := grammar.Parse("xml-rpc", grammar.XMLRPCSrc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Compile(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHardwareGenerate measures spec-to-netlist lowering.
func BenchmarkHardwareGenerate(b *testing.B) {
	spec, err := core.Compile(grammar.XMLRPC(), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := hwgen.Generate(spec, hwgen.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
