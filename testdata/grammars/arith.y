// Ambiguous left-recursive arithmetic: the classic expr grammar with no
// precedence, so "1 + 2 * 3" has multiple parse trees and the LL(1)
// builder must refuse it. Exercises the Earley oracle's left recursion
// and tag-union-over-derivations paths.
NUM [0-9]+
%%
expr : expr "+" expr | expr "*" expr | "(" expr ")" | NUM ;
