// Dangling else: the textbook ambiguity. "if c then if c then print
// else print" derives with the else bound to either if. Non-LL(1)
// (FIRST/FIRST conflict on "if"), so only the FSA paths and the Earley
// oracle run it.
%%
stmt : "if" cond "then" stmt | "if" cond "then" stmt "else" stmt | "print" ;
cond : "ok" | "no" ;
