// Right-recursive separated list, non-LL(1) (both alternatives start
// with ITEM). The workload that makes a naive Earley chart quadratic and
// a Leo-optimized one linear.
ITEM [a-z]+
%%
list : ITEM ";" list | ITEM ;
