package cfgtag

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestShippedGrammarsCompile loads every grammar file under grammars/ and
// runs it through the full pipeline: compile, tag a smoke input, and
// synthesize.
func TestShippedGrammarsCompile(t *testing.T) {
	files, err := filepath.Glob("grammars/*.y")
	if err != nil || len(files) == 0 {
		t.Fatalf("no grammar files found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := Compile(f, string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if _, err := engine.Synthesize(Virtex4LX200); err != nil {
			t.Fatalf("%s: synthesize: %v", f, err)
		}
	}
}

func TestCSVGrammar(t *testing.T) {
	src, err := os.ReadFile("grammars/csv.y")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Compile("csv", string(src))
	if err != nil {
		t.Fatal(err)
	}
	tg := engine.NewTagger()
	input := []byte("alpha,beta 2,gamma\nsecond row,x\n")
	var got []string
	for _, m := range tg.Tag(input) {
		got = append(got, m.Term)
	}
	want := []string{
		"FIELD", "COMMA", "FIELD", "COMMA", "FIELD", "NL",
		"FIELD", "COMMA", "FIELD", "NL",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("csv tags = %v,\nwant %v", got, want)
	}
	// Lexemes include the embedded spaces (no whitespace delimiters).
	ms := tg.Tag(input)
	if lex := engine.Lexeme(input, ms[2]); lex != "beta 2" {
		t.Errorf("field lexeme = %q, want %q (space inside a field)", lex, "beta 2")
	}
	if lex := engine.Lexeme(input, ms[6]); lex != "second row" {
		t.Errorf("field lexeme = %q", lex)
	}
}

func TestEnglishGrammarFileMatchesExample(t *testing.T) {
	src, err := os.ReadFile("grammars/english.y")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Compile("english", string(src))
	if err != nil {
		t.Fatal(err)
	}
	ms := engine.NewTagger().Tag([]byte("the big dog routes a packet"))
	if len(ms) != 6 {
		t.Errorf("tags = %v", ms)
	}
	if !strings.HasPrefix(ms[1].Context, "nominal") {
		t.Errorf("adjective context = %s", ms[1].Context)
	}
}

func TestShippedXMLRPCMatchesBuiltin(t *testing.T) {
	src, err := os.ReadFile("grammars/xmlrpc.y")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Compile("xml-rpc", string(src))
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := Compile("xml-rpc", XMLRPCSource)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("<methodCall> <methodName>hi</methodName> <params> </params> </methodCall>")
	a := fromFile.NewTagger().Tag(input)
	b := builtin.NewTagger().Tag(input)
	if !reflect.DeepEqual(a, b) {
		t.Error("shipped grammar file diverges from the built-in source")
	}
}
